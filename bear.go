// Package bear is a pure-Go implementation of BEAR, the Block Elimination
// Approach for Random walk with restart on large graphs (Shin, Sael, Jung,
// Kang; SIGMOD 2015).
//
// Random walk with restart (RWR) scores every node's relevance to a seed
// node and underlies ranking, community detection, link prediction, and
// anomaly detection. BEAR splits the work into a one-time preprocessing
// phase — reorder the system matrix H = I − (1−c)Ãᵀ with a hub-and-spoke
// ordering engine (SlashBurn by default; see Options.Ordering) so its
// spoke-spoke block is block diagonal, factor that block and the Schur
// complement of it — and a per-seed query phase that answers in a handful
// of sparse matrix-vector products.
//
// Basic use:
//
//	g, err := bear.LoadEdgeList(file)
//	p, err := bear.Preprocess(g, bear.Options{})   // BEAR-Exact
//	scores, err := p.Query(seed)                   // RWR vector for seed
//
// Set Options.DropTol to a positive ξ for BEAR-Approx, which trades a
// little accuracy for substantially smaller precomputed matrices and
// faster queries. Precomputed matrices can be persisted with Save and
// reloaded with LoadPrecomputed, so the preprocessing cost is paid once.
//
// The package also exposes the RWR variants of Section 3.4 of the paper:
// personalized PageRank via QueryDist, effective importance via
// QueryEffectiveImportance, and RWR on the normalized graph Laplacian via
// Options.Laplacian.
package bear

import (
	"io"

	"bear/internal/core"
	"bear/internal/graph"
	"bear/internal/ordering"
	"bear/internal/rwr"
)

// DefaultOrdering is the reordering engine selected when Options.Ordering
// is empty: the paper's SlashBurn.
const DefaultOrdering = ordering.Default

// Orderings lists the registered reordering engines, sorted — valid values
// for Options.Ordering, the bearserve -ordering flag, and ?ordering=.
func Orderings() []string { return ordering.Names() }

// NormalizeOrdering maps the empty ordering name to DefaultOrdering and
// leaves every other name unchanged; it does not check registration.
func NormalizeOrdering(name string) string { return ordering.Normalize(name) }

// Graph is a directed weighted graph over nodes 0..N-1. Construct one with
// NewGraphBuilder, LoadEdgeList, or the Generate* helpers.
type Graph = graph.Graph

// GraphBuilder accumulates edges for a Graph.
type GraphBuilder = graph.Builder

// Options configures BEAR preprocessing. The zero value selects the
// paper's defaults: restart probability c = 0.05, SlashBurn wave size
// k = 0.001·n, no entry dropping (BEAR-Exact).
type Options = core.Options

// Precomputed holds BEAR's preprocessed matrices and answers queries. It
// is safe for concurrent use by multiple goroutines.
//
// The query methods come in two flavors: Query/QueryDist allocate the
// result vector, while QueryTo/QueryDistTo write into caller-owned memory
// and — combined with a reused Workspace — run allocation-free, which is
// what the serving hot path uses. Single-seed queries additionally take a
// block-restricted fast path (bit-identical to the general one) that
// confines the forward half of Algorithm 2 to the seed's diagonal block.
type Precomputed = core.Precomputed

// Workspace holds the scratch vectors one BEAR solve needs. Acquire one
// per goroutine from Precomputed.AcquireWorkspace, pass it to QueryTo /
// QueryDistTo for zero-allocation queries, and return it with
// ReleaseWorkspace.
type Workspace = core.Workspace

// Stats reports structural and timing measurements from preprocessing.
type Stats = core.Stats

// RefineStats reports what a refined query did: sweeps applied, final
// residual, and whether the tolerance was met. See
// Precomputed.QueryRefined.
type RefineStats = core.RefineStats

// DefaultRefineMaxIter bounds refinement sweeps when the caller passes
// maxIter <= 0.
const DefaultRefineMaxIter = core.DefaultRefineMaxIter

// ErrNoRetainedH is returned by Precomputed.Residual and the refined query
// paths when preprocessing did not retain the exact system matrix H (set
// Options.KeepH to retain it).
var ErrNoRetainedH = core.ErrNoRetainedH

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// LoadEdgeList parses a whitespace-separated "u v [weight]" edge list with
// '#' comments, the format used by SNAP datasets.
func LoadEdgeList(r io.Reader) (*Graph, error) { return graph.LoadEdgeList(r) }

// LoadMatrixMarket parses a MatrixMarket coordinate file, the format
// SuiteSparse and many graph repositories distribute datasets in.
func LoadMatrixMarket(r io.Reader) (*Graph, error) { return graph.LoadMatrixMarket(r) }

// Preprocess runs the BEAR preprocessing phase (Algorithm 1 of the paper)
// on g. With Options.DropTol == 0 the result is BEAR-Exact, whose queries
// are exact up to floating-point rounding (Theorem 1); with DropTol > 0 it
// is BEAR-Approx.
func Preprocess(g *Graph, opts Options) (*Precomputed, error) {
	return core.Preprocess(g, opts)
}

// LoadPrecomputed reads matrices previously written with
// (*Precomputed).Save, so preprocessing can be reused across processes.
func LoadPrecomputed(r io.Reader) (*Precomputed, error) { return core.Load(r) }

// TopK returns the k node ids with the highest scores in descending order
// (ties broken by ascending id), a convenience for ranking applications.
// It runs in O(n log k) with a bounded min-heap.
func TopK(scores []float64, k int) []int { return core.TopK(scores, k) }

// TopKExcluding is TopK restricted to nodes for which skip returns false;
// a nil skip is TopK. Ranking semantics are identical.
func TopKExcluding(scores []float64, k int, skip func(int) bool) []int {
	return core.TopKExcluding(scores, k, skip)
}

// TopKCandidates ranks link-prediction candidates for seed: the top-k
// scored nodes excluding the seed itself and every node it already points
// at. Pair it with Dynamic.Query or QueryBatch scores.
func TopKCandidates(g *Graph, scores []float64, seed, k int) []int {
	return core.TopKCandidates(g, scores, seed, k)
}

// TopKResult is the answer to Dynamic.QueryTopK / QueryTopKCtx — the
// hybrid push+block-elimination top-k query whose node set is provably
// identical to TopK over the full exact solve. Stats reports whether the
// certified push bound pruned the exact solve.
type TopKResult = core.TopKResult

// TopKStats reports how a hybrid top-k query was answered.
type TopKStats = core.TopKStats

// SolveIterative computes the RWR vector with the classic power iteration
// (Equation 3 of the paper) — useful as an independent cross-check of BEAR
// results and as the no-preprocessing baseline. q is the starting
// distribution; eps is the L1 convergence threshold (the paper uses 1e-8).
func SolveIterative(g *Graph, c float64, q []float64, eps float64) ([]float64, error) {
	s, err := rwr.Iterative{}.Preprocess(g, rwr.Options{C: c, Eps: eps})
	if err != nil {
		return nil, err
	}
	return s.Query(q)
}
