package bear_test

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"bear"
)

// The basic workflow: load a graph, preprocess once, query many times.
func Example() {
	edges := "0 1\n1 2\n2 0\n2 3\n3 2\n"
	g, err := bear.LoadEdgeList(strings.NewReader(edges))
	if err != nil {
		log.Fatal(err)
	}
	p, err := bear.Preprocess(g, bear.Options{}) // BEAR-Exact, c = 0.05
	if err != nil {
		log.Fatal(err)
	}
	scores, err := p.Query(0)
	if err != nil {
		log.Fatal(err)
	}
	// Node 2 collects flow from the cycle and from node 3, so with the low
	// default restart probability it outranks even the seed.
	fmt.Printf("top node: %d\n", bear.TopK(scores, 1)[0])
	// Output: top node: 2
}

// Personalized PageRank: an arbitrary starting distribution instead of a
// single seed.
func ExamplePrecomputed_QueryDist() {
	b := bear.NewGraphBuilder(4)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(1, 2, 1)
	b.AddUndirected(2, 3, 1)
	p, err := bear.Preprocess(b.Build(), bear.Options{})
	if err != nil {
		log.Fatal(err)
	}
	q := []float64{0.5, 0, 0, 0.5} // restart at either end of the path
	scores, err := p.QueryDist(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("symmetric: %v\n", scores[0] == scores[3] && scores[1] == scores[2])
	// Output: symmetric: true
}

// BEAR-Approx: trade a little accuracy for smaller precomputed matrices by
// setting the drop tolerance ξ.
func ExampleOptions_dropTolerance() {
	g := bear.GenerateBarabasiAlbert(500, 2, 1)
	exact, err := bear.Preprocess(g, bear.Options{})
	if err != nil {
		log.Fatal(err)
	}
	approx, err := bear.Preprocess(g, bear.Options{DropTol: 1 / float64(g.N())})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approx is smaller: %v\n", approx.NNZ() < exact.NNZ())
	// Output: approx is smaller: true
}

// Persisting the preprocessed matrices so queries in another process skip
// the preprocessing phase.
func ExamplePrecomputed_Save() {
	g := bear.GenerateErdosRenyi(100, 400, 2)
	p, err := bear.Preprocess(g, bear.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		log.Fatal(err)
	}
	p2, err := bear.LoadPrecomputed(&buf)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := p.Query(0)
	b, _ := p2.Query(0)
	fmt.Printf("identical after reload: %v\n", a[7] == b[7])
	// Output: identical after reload: true
}

// Incremental updates: queries stay exact on a changing graph without
// re-running preprocessing.
func ExampleDynamic() {
	g := bear.GenerateBarabasiAlbert(300, 2, 3)
	d, err := bear.NewDynamic(g, bear.Options{})
	if err != nil {
		log.Fatal(err)
	}
	before, _ := d.Query(0)
	if err := d.AddEdge(0, 250, 1); err != nil {
		log.Fatal(err)
	}
	after, err := d.Query(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new edge raised node 250's score: %v\n", after[250] > before[250])
	// Output: new edge raised node 250's score: true
}
