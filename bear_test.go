package bear_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bear"
)

func buildRing(n int) *bear.Graph {
	b := bear.NewGraphBuilder(n)
	for i := 0; i < n; i++ {
		b.AddUndirected(i, (i+1)%n, 1)
	}
	return b.Build()
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g := bear.GenerateBarabasiAlbert(500, 2, 1)
	p, err := bear.Preprocess(g, bear.Options{})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	scores, err := p.Query(5)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Cross-check against the public iterative solver.
	q := make([]float64, g.N())
	q[5] = 1
	ref, err := bear.SolveIterative(g, p.C, q, 1e-12)
	if err != nil {
		t.Fatalf("SolveIterative: %v", err)
	}
	for i := range ref {
		if math.Abs(ref[i]-scores[i]) > 1e-9 {
			t.Fatalf("BEAR and iterative disagree at %d", i)
		}
	}
	// TopK surfaces the seed first on this graph.
	if top := bear.TopK(scores, 1); top[0] != 5 {
		t.Fatalf("TopK[0] = %d, want the seed", top[0])
	}
}

func TestPublicSaveLoad(t *testing.T) {
	g := bear.GenerateRMATPul(200, 1000, 0.7, 2)
	p, err := bear.Preprocess(g, bear.Options{DropTol: 1e-5})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	p2, err := bear.LoadPrecomputed(&buf)
	if err != nil {
		t.Fatalf("LoadPrecomputed: %v", err)
	}
	a, _ := p.Query(3)
	b, _ := p2.Query(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("roundtrip changed scores")
		}
	}
}

func TestLoadEdgeListPublic(t *testing.T) {
	g, err := bear.LoadEdgeList(strings.NewReader("0 1\n1 2\n2 0\n"))
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestRingSymmetry(t *testing.T) {
	// On a symmetric ring, scores are symmetric around the seed.
	n := 24
	g := buildRing(n)
	p, err := bear.Preprocess(g, bear.Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	r, err := p.Query(0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for d := 1; d < n/2; d++ {
		if math.Abs(r[d]-r[n-d]) > 1e-10 {
			t.Fatalf("ring asymmetry at distance %d: %g vs %g", d, r[d], r[n-d])
		}
	}
	// Scores decay with distance from the seed.
	if !(r[0] > r[1] && r[1] > r[2] && r[2] > r[3]) {
		t.Fatalf("scores do not decay along the ring: %v", r[:4])
	}
}

func TestGeneratorsExposed(t *testing.T) {
	if g := bear.GenerateErdosRenyi(50, 100, 3); g.N() != 50 {
		t.Fatal("ER generator")
	}
	if g := bear.GenerateBipartite(10, 20, 30, 4); g.N() != 30 {
		t.Fatal("bipartite generator")
	}
	if g := bear.GenerateCavemanHubs(bear.CavemanHubsConfig{Communities: 3, Size: 5, PIntra: 0.5, Hubs: 2, HubDeg: 3, Seed: 5}); g.N() != 17 {
		t.Fatal("caveman generator")
	}
	if g := bear.GenerateStarMail(bear.StarMailConfig{Core: 3, Periphery: 10, LeafDeg: 1, PCore: 1, Seed: 6}); g.N() != 13 {
		t.Fatal("star generator")
	}
	if g := bear.GenerateRMAT(bear.RMATConfig{N: 32, M: 100, A: 0.25, B: 0.25, C: 0.25, D: 0.25, Seed: 7}); g.N() != 32 {
		t.Fatal("rmat generator")
	}
}

// Property: through the public API, BEAR matches the iterative solver on
// random graphs (Theorem 1, public-surface edition).
func TestQuickPublicExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		b := bear.NewGraphBuilder(n)
		for e := 0; e < 4*n; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		g := b.Build()
		p, err := bear.Preprocess(g, bear.Options{K: 2})
		if err != nil {
			return false
		}
		s := rng.Intn(n)
		got, err := p.Query(s)
		if err != nil {
			return false
		}
		q := make([]float64, n)
		q[s] = 1
		want, err := bear.SolveIterative(g, p.C, q, 1e-13)
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
