package analysis_test

import (
	"fmt"
	"log"

	"bear"
	"bear/analysis"
)

// Local community detection: RWR scores from a seed plus a sweep cut.
func ExampleSweepCut() {
	// Two 8-node cliques joined by one edge.
	b := bear.NewGraphBuilder(16)
	for base := 0; base < 16; base += 8 {
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				b.AddUndirected(base+i, base+j, 1)
			}
		}
	}
	b.AddUndirected(7, 8, 1)
	g := b.Build()

	p, err := bear.Preprocess(g, bear.Options{})
	if err != nil {
		log.Fatal(err)
	}
	scores, err := p.Query(2) // seed inside the first clique
	if err != nil {
		log.Fatal(err)
	}
	community, phi := analysis.SweepCut(g, scores)
	fmt.Printf("community size %d, conductance %.4f\n", len(community), phi)
	// Output: community size 8, conductance 0.0175
}

// Link prediction: the strongest non-neighbor under RWR.
func ExamplePredictLinks() {
	// A triangle 0-1-2 plus a pendant 3 attached to 1: from node 0, node 3
	// is the best non-neighbor (two-hop via the triangle).
	b := bear.NewGraphBuilder(4)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(1, 2, 1)
	b.AddUndirected(0, 2, 1)
	b.AddUndirected(1, 3, 1)
	g := b.Build()
	p, err := bear.Preprocess(g, bear.Options{})
	if err != nil {
		log.Fatal(err)
	}
	scores, err := p.Query(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.PredictLinks(g, 0, scores, 1))
	// Output: [3]
}
