// Package analysis implements the graph-mining applications the paper
// motivates RWR with (Section 5): local community detection by sweep cut
// (Andersen, Chung & Lang), link prediction (Liben-Nowell & Kleinberg),
// and neighborhood-coherence anomaly scoring (Sun et al.). Every function
// consumes RWR score vectors produced by a bear.Precomputed (or any other
// solver), so the package works with exact and approximate scores alike.
package analysis

import (
	"fmt"
	"sort"

	"bear"
)

// volumes returns the weighted out-degree of every node and their total.
func volumes(g *bear.Graph) (deg []float64, total float64) {
	n := g.N()
	deg = make([]float64, n)
	for u := 0; u < n; u++ {
		_, w := g.Out(u)
		for _, x := range w {
			deg[u] += x
		}
		total += deg[u]
	}
	return deg, total
}

// Conductance computes cut(S) / min(vol(S), vol(V∖S)) for a node set,
// the quality measure sweep cuts minimize. An empty or full set has
// conductance 1.
func Conductance(g *bear.Graph, set []int) float64 {
	n := g.N()
	in := make([]bool, n)
	for _, u := range set {
		if u < 0 || u >= n {
			panic(fmt.Sprintf("analysis: node %d out of range [0,%d)", u, n))
		}
		in[u] = true
	}
	var cut, vol, total float64
	for u := 0; u < n; u++ {
		dst, w := g.Out(u)
		for k, v := range dst {
			total += w[k]
			if in[u] {
				vol += w[k]
				if !in[v] {
					cut += w[k]
				}
			}
		}
	}
	denom := vol
	if total-vol < denom {
		denom = total - vol
	}
	if denom == 0 {
		return 1
	}
	return cut / denom
}

// SweepCut orders nodes by degree-normalized score descending and returns
// the prefix of minimum conductance (restricted to prefixes holding at
// most half the graph's volume), together with that conductance. It is
// the local community detection primitive built on RWR vectors: pass the
// scores of a seed node and get the seed's community.
func SweepCut(g *bear.Graph, scores []float64) (community []int, conductance float64) {
	n := g.N()
	if len(scores) != n {
		panic(fmt.Sprintf("analysis: %d scores for %d nodes", len(scores), n))
	}
	deg, totalVol := volumes(g)
	order := make([]int, 0, n)
	for u := 0; u < n; u++ {
		if scores[u] > 0 && deg[u] > 0 {
			order = append(order, u)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		ra, rb := scores[a]/deg[a], scores[b]/deg[b]
		if ra != rb {
			return ra > rb
		}
		return a < b
	})

	inSet := make([]bool, n)
	var cut, vol float64
	best, bestAt := 2.0, 0
	for i, u := range order {
		dst, w := g.Out(u)
		for k, v := range dst {
			if inSet[v] {
				cut -= w[k]
			} else if v != u {
				cut += w[k]
			}
		}
		inSet[u] = true
		vol += deg[u]
		if vol > totalVol/2 {
			break
		}
		denom := vol
		if totalVol-vol < denom {
			denom = totalVol - vol
		}
		if denom > 0 {
			if phi := cut / denom; phi < best {
				best, bestAt = phi, i+1
			}
		}
	}
	if bestAt == 0 {
		return nil, 1
	}
	return order[:bestAt], best
}

// PredictLinks returns the k most likely new neighbors of seed under the
// given RWR scores: the highest-scoring nodes that are neither the seed
// nor already out-neighbors of it.
func PredictLinks(g *bear.Graph, seed int, scores []float64, k int) []int {
	n := g.N()
	if len(scores) != n {
		panic(fmt.Sprintf("analysis: %d scores for %d nodes", len(scores), n))
	}
	if seed < 0 || seed >= n {
		panic(fmt.Sprintf("analysis: seed %d out of range [0,%d)", seed, n))
	}
	masked := append([]float64(nil), scores...)
	masked[seed] = -1
	dst, _ := g.Out(seed)
	for _, v := range dst {
		masked[v] = -1
	}
	top := bear.TopK(masked, k+len(dst)+1)
	out := make([]int, 0, k)
	for _, u := range top {
		if masked[u] < 0 {
			continue
		}
		out = append(out, u)
		if len(out) == k {
			break
		}
	}
	return out
}

// Querier answers single-seed RWR queries; *bear.Precomputed and
// *bear.Dynamic both satisfy it.
type Querier interface {
	Query(seed int) ([]float64, error)
}

// NeighborhoodCoherence scores how mutually relevant node u's neighbors
// are: the mean RWR score between ordered pairs of distinct neighbors.
// Sun et al. flag nodes with low coherence as anomalies (their neighbors
// belong to unrelated parts of the graph). Nodes with fewer than two
// neighbors return 1 (vacuously coherent).
func NeighborhoodCoherence(q Querier, g *bear.Graph, u int) (float64, error) {
	if u < 0 || u >= g.N() {
		return 0, fmt.Errorf("analysis: node %d out of range [0,%d)", u, g.N())
	}
	nbrs, _ := g.Out(u)
	if len(nbrs) < 2 {
		return 1, nil
	}
	var total float64
	var count int
	for _, i := range nbrs {
		scores, err := q.Query(i)
		if err != nil {
			return 0, err
		}
		for _, j := range nbrs {
			if j != i {
				total += scores[j]
				count++
			}
		}
	}
	return total / float64(count), nil
}

// AnomalyRanking scores every node in [0, limit) by ascending neighborhood
// coherence and returns node ids from most to least anomalous. limit ≤ 0
// scans the whole graph.
func AnomalyRanking(q Querier, g *bear.Graph, limit int) ([]int, []float64, error) {
	n := g.N()
	if limit <= 0 || limit > n {
		limit = n
	}
	coh := make([]float64, limit)
	for u := 0; u < limit; u++ {
		c, err := NeighborhoodCoherence(q, g, u)
		if err != nil {
			return nil, nil, err
		}
		coh[u] = c
	}
	order := make([]int, limit)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if coh[order[i]] != coh[order[j]] {
			return coh[order[i]] < coh[order[j]]
		}
		return order[i] < order[j]
	})
	return order, coh, nil
}
