package analysis

import (
	"math"
	"testing"

	"bear"
)

// twoCliques builds two dense cliques of size sz joined by one bridge
// edge; the planted community structure every test relies on.
func twoCliques(sz int) *bear.Graph {
	b := bear.NewGraphBuilder(2 * sz)
	for base := 0; base < 2*sz; base += sz {
		for i := 0; i < sz; i++ {
			for j := i + 1; j < sz; j++ {
				b.AddUndirected(base+i, base+j, 1)
			}
		}
	}
	b.AddUndirected(sz-1, sz, 1)
	return b.Build()
}

func rwrScores(t *testing.T, g *bear.Graph, seed int) (*bear.Precomputed, []float64) {
	t.Helper()
	p, err := bear.Preprocess(g, bear.Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	scores, err := p.Query(seed)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	return p, scores
}

func TestConductance(t *testing.T) {
	g := twoCliques(6)
	// One full clique: only the bridge edge is cut.
	set := []int{0, 1, 2, 3, 4, 5}
	phi := Conductance(g, set)
	// vol(S) = 6·5 + 1 bridge endpoint = 31; cut = 1.
	if math.Abs(phi-1.0/31.0) > 1e-12 {
		t.Fatalf("conductance = %g, want %g", phi, 1.0/31.0)
	}
	if Conductance(g, nil) != 1 {
		t.Fatal("empty set should have conductance 1")
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	if Conductance(g, all) != 1 {
		t.Fatal("full set should have conductance 1")
	}
}

func TestConductancePanicsOutOfRange(t *testing.T) {
	g := twoCliques(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Conductance(g, []int{99})
}

func TestSweepCutRecoversClique(t *testing.T) {
	const sz = 8
	g := twoCliques(sz)
	_, scores := rwrScores(t, g, 2) // seed in first clique
	community, phi := SweepCut(g, scores)
	if len(community) != sz {
		t.Fatalf("community size %d, want %d", len(community), sz)
	}
	for _, u := range community {
		if u >= sz {
			t.Fatalf("community leaked into second clique: node %d", u)
		}
	}
	if phi > 0.05 {
		t.Fatalf("conductance %g too high for a clique cut", phi)
	}
	// The returned conductance matches recomputation from scratch.
	if recomputed := Conductance(g, community); math.Abs(recomputed-phi) > 1e-12 {
		t.Fatalf("reported conductance %g != recomputed %g", phi, recomputed)
	}
}

func TestSweepCutZeroScores(t *testing.T) {
	g := twoCliques(4)
	community, phi := SweepCut(g, make([]float64, g.N()))
	if community != nil || phi != 1 {
		t.Fatalf("zero scores should find nothing, got %v %g", community, phi)
	}
}

func TestPredictLinks(t *testing.T) {
	const sz = 6
	g := twoCliques(sz)
	// Remove one within-clique edge and check it is predicted back.
	b := bear.NewGraphBuilder(g.N())
	for u := 0; u < g.N(); u++ {
		dst, w := g.Out(u)
		for k, v := range dst {
			if (u == 0 && v == 3) || (u == 3 && v == 0) {
				continue
			}
			b.AddEdge(u, v, w[k])
		}
	}
	train := b.Build()
	_, scores := rwrScores(t, train, 0)
	pred := PredictLinks(train, 0, scores, 1)
	if len(pred) != 1 || pred[0] != 3 {
		t.Fatalf("PredictLinks = %v, want [3]", pred)
	}
	// Existing neighbors are never predicted.
	for _, u := range PredictLinks(train, 0, scores, 5) {
		if train.HasEdge(0, u) || u == 0 {
			t.Fatalf("predicted existing neighbor %d", u)
		}
	}
}

func TestNeighborhoodCoherence(t *testing.T) {
	const sz = 6
	g := twoCliques(sz)
	p, _ := rwrScores(t, g, 0)
	// A clique member's neighbors are mutually adjacent: high coherence.
	cohIn, err := NeighborhoodCoherence(p, g, 1)
	if err != nil {
		t.Fatalf("coherence: %v", err)
	}
	if cohIn <= 0 {
		t.Fatalf("clique coherence %g not positive", cohIn)
	}
	if _, err := NeighborhoodCoherence(p, g, -1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestAnomalyRankingFindsBridgeNode(t *testing.T) {
	// A node whose neighbors span two cliques is the least coherent.
	const sz = 6
	b := bear.NewGraphBuilder(2*sz + 1)
	for base := 0; base < 2*sz; base += sz {
		for i := 0; i < sz; i++ {
			for j := i + 1; j < sz; j++ {
				b.AddUndirected(base+i, base+j, 1)
			}
		}
	}
	anom := 2 * sz
	b.AddUndirected(anom, 0, 1)
	b.AddUndirected(anom, sz, 1) // one neighbor in each clique
	g := b.Build()
	p, err := bear.Preprocess(g, bear.Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	order, coh, err := AnomalyRanking(p, g, 0)
	if err != nil {
		t.Fatalf("AnomalyRanking: %v", err)
	}
	if order[0] != anom {
		t.Fatalf("most anomalous node %d (coh %g), want %d (coh %g)",
			order[0], coh[order[0]], anom, coh[anom])
	}
}

func TestQuerierInterfaceSatisfied(t *testing.T) {
	g := twoCliques(4)
	p, err := bear.Preprocess(g, bear.Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	d, err := bear.NewDynamic(g, bear.Options{K: 1})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	for _, q := range []Querier{p, d} {
		if _, err := NeighborhoodCoherence(q, g, 0); err != nil {
			t.Fatalf("querier failed: %v", err)
		}
	}
}
