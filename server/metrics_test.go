package server

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bear/internal/obsv"
)

// newHTTPTestServer serves a pre-configured Server (newTestServer covers
// the default-configuration case).
func newHTTPTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// syncWriter serializes writes so test log buffers are race-free against
// background goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// scrape fetches /metrics and returns the body after asserting the
// response is well-formed Prometheus text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obsv.LintPrometheusText(bytes.NewReader(body)); err != nil {
		t.Fatalf("scrape is not valid Prometheus text: %v\n%s", err, body)
	}
	return string(body)
}

// TestMetricsScrape drives real traffic through the handler and asserts
// the scrape is lint-clean and covers every metric family the runbook
// documents: request counters, latency histograms, cache counters,
// in-flight gauge, and the per-graph preprocessing stage timings.
func TestMetricsScrape(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	doJSON(t, "GET", base+"/g/query?seed=3&top=5", "", http.StatusOK) // miss
	doJSON(t, "GET", base+"/g/query?seed=3&top=5", "", http.StatusOK) // hit
	doJSON(t, "GET", base+"/missing/query?seed=0", "", http.StatusNotFound)

	body := scrape(t, ts.URL)
	for _, want := range []string{
		`bear_http_requests_total{code="200",endpoint="query"} 2`,
		`bear_http_requests_total{code="404",endpoint="query"} 1`,
		`bear_http_requests_total{code="201",endpoint="put"} 1`,
		`bear_http_request_seconds_bucket{endpoint="query",le="+Inf"} 3`,
		"bear_http_request_seconds_sum{", "bear_http_request_seconds_count{",
		"bear_http_in_flight 0",
		"bear_http_shed_total 0",
		"bear_http_panics_total 0",
		"bear_cache_hits_total 1",
		"bear_cache_misses_total 1",
		"bear_cache_coalesced_total 0",
		"bear_cache_entries 1",
		"bear_graphs 1",
		`bear_graph_nodes{graph="g"}`,
		`bear_graph_edges{graph="g"}`,
		`bear_graph_pending_updates{graph="g"} 0`,
		`bear_graph_rebuilding{graph="g"} 0`,
		`bear_precomputed_bytes{graph="g"}`,
		`bear_preprocess_stage_seconds{graph="g",stage="ordering"}`,
		`bear_preprocess_stage_seconds{graph="g",stage="block_lu"}`,
		`bear_preprocess_stage_seconds{graph="g",stage="schur_assembly"}`,
		`bear_preprocess_stage_seconds{graph="g",stage="schur_factor"}`,
		`bear_preprocess_stage_seconds{graph="g",stage="total"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestMetricsDisabled: EnableMetrics=false unmaps the endpoint but the
// rest of the API is untouched.
func TestMetricsDisabled(t *testing.T) {
	s := New()
	s.EnableMetrics = false
	ts := newHTTPTestServer(t, s)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /metrics: status %d, want 404", resp.StatusCode)
	}
	doJSON(t, "GET", ts.URL+"/healthz", "", http.StatusOK)
}

// TestStatsAgreesWithMetrics: /v1/stats is re-backed by the metric
// registry, so its counters must equal the scraped series verbatim.
func TestStatsAgreesWithMetrics(t *testing.T) {
	s, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	for i := 0; i < 3; i++ {
		doJSON(t, "GET", base+"/g/query?seed=1", "", http.StatusOK)
	}
	doJSON(t, "GET", base+"/g/query?seed=2", "", http.StatusOK)

	st := s.Stats()
	body := scrape(t, ts.URL)
	for series, got := range map[string]uint64{
		"bear_cache_hits_total":   st.Cache.Hits,
		"bear_cache_misses_total": st.Cache.Misses,
	} {
		want := metricValue(t, body, series)
		if float64(got) != want {
			t.Errorf("%s: /v1/stats says %d, /metrics says %v", series, got, want)
		}
	}
	if got, want := float64(st.Graphs), metricValue(t, body, "bear_graphs"); got != want {
		t.Errorf("graphs: /v1/stats says %v, /metrics says %v", got, want)
	}
}

// metricValue extracts one unlabeled sample value from a scrape body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(name)+1:]), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in scrape", name)
	return 0
}

// TestDeleteDropsGraphSeries: deleting a graph must remove every series
// labeled with it so a dead graph cannot linger on dashboards.
func TestDeleteDropsGraphSeries(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/doomed", edgeListBody(), http.StatusCreated)
	if body := scrape(t, ts.URL); !strings.Contains(body, `graph="doomed"`) {
		t.Fatal("per-graph series not exported after PUT")
	}
	doJSON(t, "DELETE", base+"/doomed", "", http.StatusOK)
	if body := scrape(t, ts.URL); strings.Contains(body, `graph="doomed"`) {
		t.Error("per-graph series survived DELETE")
	}
}

// TestQueryTraceDebug: ?trace=1 returns the solver-stage breakdown; a
// cache miss shows the Algorithm 2 stages, a hit only the cache lookup.
func TestQueryTraceDebug(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	spanNames := func(out map[string]interface{}) map[string]bool {
		t.Helper()
		raw, ok := out["trace"].([]interface{})
		if !ok {
			t.Fatalf("response has no trace array: %v", out)
		}
		names := make(map[string]bool)
		for _, sp := range raw {
			m := sp.(map[string]interface{})
			names[m["span"].(string)] = true
			if _, ok := m["ms"].(float64); !ok {
				t.Fatalf("span %v has no ms field", sp)
			}
		}
		return names
	}

	miss := doJSON(t, "GET", base+"/g/query?seed=5&trace=1", "", http.StatusOK)
	got := spanNames(miss)
	for _, want := range []string{obsv.SpanCacheLookup, obsv.SpanForwardSolve, obsv.SpanSchurSolve, obsv.SpanBackSolve} {
		if !got[want] {
			t.Errorf("miss trace lacks span %q (got %v)", want, got)
		}
	}

	hit := doJSON(t, "GET", base+"/g/query?seed=5&trace=1", "", http.StatusOK)
	got = spanNames(hit)
	if !got[obsv.SpanCacheLookup] {
		t.Errorf("hit trace lacks cache lookup span: %v", got)
	}
	if got[obsv.SpanSchurSolve] {
		t.Errorf("cache hit ran a solve: %v", got)
	}

	// Untraced requests carry no trace key at all.
	plain := doJSON(t, "GET", base+"/g/query?seed=6", "", http.StatusOK)
	if _, ok := plain["trace"]; ok {
		t.Error("untraced response contains a trace field")
	}

	// The batch endpoint reports merged spans the same way.
	batch := doJSON(t, "POST", base+"/g/batch?trace=1", `{"seeds":[7,8],"top":3}`, http.StatusOK)
	got = spanNames(batch)
	for _, want := range []string{obsv.SpanCacheLookup, obsv.SpanSchurSolve} {
		if !got[want] {
			t.Errorf("batch trace lacks span %q (got %v)", want, got)
		}
	}
}

// TestSlowQueryLog: with TraceSlow set below any real query duration,
// every cache-missing query must emit a structured slow-query line with
// the per-stage breakdown.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	sw := &syncWriter{w: &buf}
	s := New()
	s.TraceSlow = time.Nanosecond
	s.ErrorLog = log.New(sw, "", 0)
	ts := newHTTPTestServer(t, s)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	doJSON(t, "GET", base+"/g/query?seed=4", "", http.StatusOK)

	sw.mu.Lock()
	logged := buf.String()
	sw.mu.Unlock()
	if !strings.Contains(logged, "slow query:") {
		t.Fatalf("no slow-query line logged; log: %q", logged)
	}
	for _, want := range []string{"endpoint=query", "graph=g", "seed=4", "cache=miss",
		obsv.SpanForwardSolve, obsv.SpanSchurSolve, obsv.SpanBackSolve} {
		if !strings.Contains(logged, want) {
			t.Errorf("slow-query line missing %q: %q", want, logged)
		}
	}
}

// TestSnapshotRestoreKeepsGraphSeries: restoring a snapshot re-exports
// the per-graph series bound to the restored Dynamic instances.
func TestSnapshotRestoreKeepsGraphSeries(t *testing.T) {
	s, ts := newTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v1/graphs/kept", edgeListBody(), http.StatusCreated)

	var snap bytes.Buffer
	if err := s.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	ts2 := newHTTPTestServer(t, s2)
	doJSON(t, "PUT", ts2.URL+"/v1/graphs/old", edgeListBody(), http.StatusCreated)
	if err := s2.ReadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	body := scrape(t, ts2.URL)
	if !strings.Contains(body, `bear_graph_nodes{graph="kept"}`) {
		t.Error("restored graph has no metric series")
	}
	if strings.Contains(body, `graph="old"`) {
		t.Error("pre-restore graph series survived the restore")
	}
}

// TestOrderingSelectionAndMetrics: the PUT ?ordering= override must be
// reflected in the graph info and in the bear_ordering_selected gauge
// family — exactly one engine at 1 per graph; an unknown name is a 400.
func TestOrderingSelectionAndMetrics(t *testing.T) {
	s := New()
	s.DefaultOrdering = "" // slashburn
	ts := newHTTPTestServer(t, s)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/md?ordering=mindeg", edgeListBody(), http.StatusCreated)
	doJSON(t, "PUT", base+"/def", edgeListBody(), http.StatusCreated)
	doJSON(t, "PUT", base+"/bad?ordering=no-such-engine", edgeListBody(), http.StatusBadRequest)

	info := doJSON(t, "GET", base+"/md", "", http.StatusOK)
	if got := info["ordering"]; got != "mindeg" {
		t.Errorf("info ordering = %v, want mindeg", got)
	}
	if got := doJSON(t, "GET", base+"/def", "", http.StatusOK)["ordering"]; got != "slashburn" {
		t.Errorf("default info ordering = %v, want slashburn", got)
	}

	body := scrape(t, ts.URL)
	for _, want := range []string{
		`bear_ordering_selected{graph="md",ordering="mindeg"} 1`,
		`bear_ordering_selected{graph="md",ordering="slashburn"} 0`,
		`bear_ordering_selected{graph="def",ordering="slashburn"} 1`,
		`bear_ordering_selected{graph="def",ordering="mindeg"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if strings.Contains(body, `graph="bad"`) {
		t.Error("rejected PUT left metric series behind")
	}
}
