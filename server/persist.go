// Registry snapshots: the whole server state — every graph's dynamic
// serving state, name, and creation time — in one file, written atomically
// (temp file + fsync + rename) and framed with a length/CRC32 footer so a
// crash mid-write or later bit-rot is detected on restore instead of
// silently serving garbage.

package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"bear"
)

// snapMagic identifies a server registry snapshot.
var snapMagic = [8]byte{'B', 'E', 'A', 'R', 'S', 'V', '0', '1'}

const (
	snapFooterLen = 12      // 8-byte payload length + 4-byte CRC32 (IEEE)
	maxSnapGraphs = 1 << 20 // sanity bounds against corrupt headers
	maxSnapBlob   = 1 << 38
)

type crcCountWriter struct {
	w   io.Writer
	n   int64
	sum uint32
}

func (c *crcCountWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

type crcCountReader struct {
	r   io.Reader
	n   int64
	sum uint32
}

func (c *crcCountReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// WriteSnapshot serializes every registered graph to w. Each graph's
// dynamic state carries its own integrity footer (see Dynamic.SaveState);
// the snapshot adds an outer footer covering the framing, so corruption
// anywhere in the file is caught.
func (s *Server) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	names := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]*entry, len(names))
	for i, name := range names {
		entries[i] = s.graphs[name]
	}
	s.mu.RUnlock()

	bw := bufio.NewWriter(w)
	cw := &crcCountWriter{w: bw}
	if _, err := cw.Write(snapMagic[:]); err != nil {
		return fmt.Errorf("server: writing snapshot: %w", err)
	}
	if err := writeU64(cw, uint64(len(names))); err != nil {
		return fmt.Errorf("server: writing snapshot: %w", err)
	}
	var blob bytes.Buffer
	for i, name := range names {
		blob.Reset()
		if err := entries[i].dyn.SaveState(&blob); err != nil {
			return fmt.Errorf("server: snapshotting graph %q: %w", name, err)
		}
		if err := writeU64(cw, uint64(len(name))); err != nil {
			return fmt.Errorf("server: writing snapshot: %w", err)
		}
		if _, err := io.WriteString(cw, name); err != nil {
			return fmt.Errorf("server: writing snapshot: %w", err)
		}
		if err := writeU64(cw, uint64(entries[i].created.UnixNano())); err != nil {
			return fmt.Errorf("server: writing snapshot: %w", err)
		}
		if err := writeU64(cw, uint64(blob.Len())); err != nil {
			return fmt.Errorf("server: writing snapshot: %w", err)
		}
		if _, err := cw.Write(blob.Bytes()); err != nil {
			return fmt.Errorf("server: writing snapshot: %w", err)
		}
	}
	var foot [snapFooterLen]byte
	binary.LittleEndian.PutUint64(foot[:8], uint64(cw.n))
	binary.LittleEndian.PutUint32(foot[8:], cw.sum)
	if _, err := bw.Write(foot[:]); err != nil {
		return fmt.Errorf("server: writing snapshot: %w", err)
	}
	return bw.Flush()
}

// ReadSnapshot restores the registry from a snapshot written by
// WriteSnapshot, replacing all currently registered graphs. On any error
// the existing registry is left untouched.
func (s *Server) ReadSnapshot(r io.Reader) error {
	// Flag the restore for GET /readyz: a router drains this instance
	// until the registry swap below lands (or the restore fails).
	s.restoring.Store(true)
	defer s.restoring.Store(false)
	cr := &crcCountReader{r: bufio.NewReader(r)}
	var got [8]byte
	if _, err := io.ReadFull(cr, got[:]); err != nil {
		return fmt.Errorf("server: reading snapshot: %w", err)
	}
	if got != snapMagic {
		return fmt.Errorf("server: bad magic %q; not a BEAR server snapshot", got[:])
	}
	count, err := readU64(cr)
	if err != nil {
		return fmt.Errorf("server: reading snapshot: %w", err)
	}
	if count > maxSnapGraphs {
		return fmt.Errorf("server: corrupt snapshot: %d graphs", count)
	}
	graphs := make(map[string]*entry, count)
	for i := uint64(0); i < count; i++ {
		nameLen, err := readU64(cr)
		if err != nil {
			return fmt.Errorf("server: reading snapshot: %w", err)
		}
		if nameLen == 0 || nameLen > 128 {
			return fmt.Errorf("server: corrupt snapshot: graph name of %d bytes", nameLen)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(cr, nameBytes); err != nil {
			return fmt.Errorf("server: reading snapshot: %w", err)
		}
		name := string(nameBytes)
		if err := validateName(name); err != nil {
			return fmt.Errorf("server: corrupt snapshot: %w", err)
		}
		createdNano, err := readU64(cr)
		if err != nil {
			return fmt.Errorf("server: reading snapshot: %w", err)
		}
		blobLen, err := readU64(cr)
		if err != nil {
			return fmt.Errorf("server: reading snapshot: %w", err)
		}
		if blobLen > maxSnapBlob {
			return fmt.Errorf("server: corrupt snapshot: graph %q blob of %d bytes", name, blobLen)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(cr, blob); err != nil {
			return fmt.Errorf("server: reading snapshot: %w", err)
		}
		dyn, err := bear.LoadDynamic(bytes.NewReader(blob))
		if err != nil {
			return fmt.Errorf("server: restoring graph %q: %w", name, err)
		}
		s.applyRebuildPolicy(dyn)
		graphs[name] = &entry{
			dyn:     dyn,
			opts:    dyn.Options(),
			created: time.Unix(0, int64(createdNano)),
			// A fresh generation: the restored Dynamic restarts its epoch
			// at zero, so entries cached against the pre-restore instance
			// must not be reachable from post-restore keys.
			gen: nextGen.Add(1),
		}
	}
	var foot [snapFooterLen]byte
	// The footer is outside the checksummed region — read it directly.
	if _, err := io.ReadFull(cr.r, foot[:]); err != nil {
		return fmt.Errorf("server: truncated snapshot: missing integrity footer: %w", err)
	}
	if n := binary.LittleEndian.Uint64(foot[:8]); n != uint64(cr.n) {
		return fmt.Errorf("server: corrupt snapshot: footer records %d payload bytes, read %d", n, cr.n)
	}
	if sum := binary.LittleEndian.Uint32(foot[8:]); sum != cr.sum {
		return fmt.Errorf("server: corrupt snapshot: CRC32 mismatch (stored %08x, computed %08x)", sum, cr.sum)
	}
	s.mu.Lock()
	replaced := s.graphs
	s.graphs = graphs
	s.mu.Unlock()
	// Restore bypasses Add, so the per-graph metric series are (re)bound
	// here — outside s.mu, per the lock-ordering rule in metrics.go.
	// Series of graphs that existed only pre-restore are dropped.
	for name := range replaced {
		if _, still := graphs[name]; !still {
			s.dropGraphMetrics(name)
		}
	}
	for name, e := range graphs {
		s.exportGraphMetrics(name, e)
	}
	return nil
}

// SaveSnapshot writes the registry to path atomically: the bytes land in a
// temp file in the same directory, are fsynced, and only then renamed over
// path, so a crash at any point leaves either the old snapshot or the new
// one — never a torn file.
func (s *Server) SaveSnapshot(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: saving snapshot: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := s.WriteSnapshot(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("server: saving snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: saving snapshot: %w", err)
	}
	name := tmp.Name()
	tmp = nil // disarm cleanup; the file is complete
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("server: saving snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot restores the registry from the file at path. A missing file
// is reported via os.IsNotExist on the unwrapped error so callers can
// treat first boot as empty.
func (s *Server) LoadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.ReadSnapshot(f); err != nil {
		return fmt.Errorf("server: loading snapshot %s: %w", path, err)
	}
	return nil
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
