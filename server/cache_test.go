package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// doJSONCache is doJSON plus the X-Cache response header.
func doJSONCache(t *testing.T, method, url, body string, wantStatus int) (map[string]interface{}, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d (body %v)", method, url, resp.StatusCode, wantStatus, out)
	}
	return out, resp.Header.Get("X-Cache")
}

func TestQueryCacheHitMissAndInvalidation(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	q := base + "/g/query?seed=3&top=5"

	first, st := doJSONCache(t, "GET", q, "", http.StatusOK)
	if st != "miss" {
		t.Fatalf("first query X-Cache = %q, want miss", st)
	}
	second, st := doJSONCache(t, "GET", q, "", http.StatusOK)
	if st != "hit" {
		t.Fatalf("repeat query X-Cache = %q, want hit", st)
	}
	if fmt.Sprint(first["results"]) != fmt.Sprint(second["results"]) {
		t.Fatalf("cached results differ:\n%v\n%v", first["results"], second["results"])
	}
	// A different top is a different key.
	if _, st := doJSONCache(t, "GET", base+"/g/query?seed=3&top=7", "", http.StatusOK); st != "miss" {
		t.Fatalf("different top X-Cache = %q, want miss", st)
	}
	// PageRank and PPR cache too.
	for _, c := range []struct{ method, url, body string }{
		{"GET", base + "/g/pagerank?top=5", ""},
		{"POST", base + "/g/ppr", `{"seeds":{"3":0.5,"9":0.5},"top":5}`},
	} {
		if _, st := doJSONCache(t, c.method, c.url, c.body, http.StatusOK); st != "miss" {
			t.Fatalf("%s first X-Cache = %q, want miss", c.url, st)
		}
		if _, st := doJSONCache(t, c.method, c.url, c.body, http.StatusOK); st != "hit" {
			t.Fatalf("%s repeat X-Cache = %q, want hit", c.url, st)
		}
	}
	// PPR key must not depend on JSON seed order.
	if _, st := doJSONCache(t, "POST", base+"/g/ppr", `{"seeds":{"9":0.5,"3":0.5},"top":5}`, http.StatusOK); st != "hit" {
		t.Fatalf("reordered ppr seeds X-Cache = %q, want hit", st)
	}

	// An accepted update bumps the epoch: every old entry is unreachable.
	doJSON(t, "POST", base+"/g/edges", `{"op":"add","u":3,"v":40,"w":5}`, http.StatusOK)
	post, st := doJSONCache(t, "GET", q, "", http.StatusOK)
	if st != "miss" {
		t.Fatalf("post-update X-Cache = %q, want miss", st)
	}
	if fmt.Sprint(post["results"]) == fmt.Sprint(first["results"]) {
		t.Fatal("post-update results identical to pre-update results; stale vector served")
	}
	if _, st := doJSONCache(t, "GET", q, "", http.StatusOK); st != "hit" {
		t.Fatalf("post-update repeat X-Cache = %q, want hit", st)
	}
}

func TestCacheDisabledStillServes(t *testing.T) {
	s := New()
	s.CacheMaxBytes = -1
	ts := newHTTPServer(t, s)
	base := ts + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	for i := 0; i < 2; i++ {
		if _, st := doJSONCache(t, "GET", base+"/g/query?seed=1", "", http.StatusOK); st != "miss" {
			t.Fatalf("disabled cache X-Cache = %q, want miss", st)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	doJSON(t, "GET", base+"/g/query?seed=1", "", http.StatusOK)
	doJSON(t, "GET", base+"/g/query?seed=1", "", http.StatusOK)
	out := doJSON(t, "GET", ts.URL+"/v1/stats", "", http.StatusOK)
	if out["graphs"].(float64) != 1 {
		t.Fatalf("stats graphs = %v", out["graphs"])
	}
	cache := out["cache"].(map[string]interface{})
	if cache["hits"].(float64) < 1 || cache["misses"].(float64) < 1 {
		t.Fatalf("stats cache = %v", cache)
	}
	if cache["entries"].(float64) < 1 || cache["bytes"].(float64) <= 0 {
		t.Fatalf("stats cache sizes = %v", cache)
	}
}

// TestCoalescedQueriesShareOneSolve drives cachedSolve directly with a
// gated solver so the coalesced path is deterministic: N concurrent
// identical requests must produce exactly one solve, one "miss", and N-1
// "coalesced".
func TestCoalescedQueriesShareOneSolve(t *testing.T) {
	s, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	e, ok := s.lookup("g")
	if !ok {
		t.Fatal("graph not registered")
	}

	const waiters = 6
	release := make(chan struct{})
	started := make(chan struct{})
	var solves, misses, coalesced int
	var mu sync.Mutex
	var wg sync.WaitGroup

	solve := func(first bool) func(context.Context) ([]float64, error) {
		return func(context.Context) ([]float64, error) {
			if first {
				close(started)
				<-release
			}
			mu.Lock()
			solves++
			mu.Unlock()
			return e.dyn.Query(5)
		}
	}
	hash := e.hasher("query").Int(5).Byte(0).Int(10).Sum()
	record := func(status string) {
		mu.Lock()
		defer mu.Unlock()
		switch status {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, status, err := s.cachedSolve(context.Background(), e, hash, 10, solve(true))
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		record(status)
	}()
	<-started
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, status, err := s.cachedSolve(context.Background(), e, hash, 10, solve(false))
			if err != nil {
				t.Errorf("waiter: %v", err)
			}
			record(status)
		}()
	}
	for s.flight.Coalesced() < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if solves != 1 {
		t.Fatalf("solve ran %d times, want 1", solves)
	}
	if misses != 1 || coalesced != waiters {
		t.Fatalf("miss/coalesced = %d/%d, want 1/%d", misses, coalesced, waiters)
	}
	// The flight's result was cached: the next request is a plain hit.
	if _, status, _ := s.cachedSolve(context.Background(), e, hash, 10, solve(false)); status != "hit" {
		t.Fatalf("follow-up status = %q, want hit", status)
	}
}

func TestBatchEndpointMatchesSingleQueries(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	seeds := []int{0, 5, 17, 40, 63, 5} // duplicate included
	body := `{"seeds":[0,5,17,40,63,5],"top":5}`
	out, st := doJSONCache(t, "POST", base+"/g/batch", body, http.StatusOK)
	if st != "miss" {
		t.Fatalf("first batch X-Cache = %q, want miss", st)
	}
	results := out["results"].([]interface{})
	if len(results) != len(seeds) {
		t.Fatalf("batch returned %d results for %d seeds", len(results), len(seeds))
	}
	for i, raw := range results {
		slot := raw.(map[string]interface{})
		if int(slot["seed"].(float64)) != seeds[i] {
			t.Fatalf("slot %d seed = %v, want %d", i, slot["seed"], seeds[i])
		}
		single := doJSON(t, "GET", fmt.Sprintf("%s/g/query?seed=%d&top=5", base, seeds[i]), "", http.StatusOK)
		if fmt.Sprint(slot["results"]) != fmt.Sprint(single["results"]) {
			t.Fatalf("seed %d: batch results differ from single query:\nbatch:  %v\nsingle: %v",
				seeds[i], slot["results"], single["results"])
		}
	}
	// The single queries above hit the batch-written entries; a repeat
	// batch is all hits.
	out2, st := doJSONCache(t, "POST", base+"/g/batch", body, http.StatusOK)
	if st != "hit" {
		t.Fatalf("repeat batch X-Cache = %q, want hit", st)
	}
	for _, raw := range out2["results"].([]interface{}) {
		if c := raw.(map[string]interface{})["cache"]; c != "hit" {
			t.Fatalf("repeat batch slot cache = %v, want hit", c)
		}
	}
	// And the single-query endpoint hits entries the batch wrote.
	if _, st := doJSONCache(t, "GET", base+"/g/query?seed=17&top=5", "", http.StatusOK); st != "hit" {
		t.Fatalf("single query after batch X-Cache = %q, want hit", st)
	}
}

func TestBatchEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	doJSON(t, "POST", base+"/g/batch", `{"seeds":[]}`, http.StatusBadRequest)
	doJSON(t, "POST", base+"/g/batch", `{"seeds":[999999]}`, http.StatusBadRequest)
	doJSON(t, "POST", base+"/g/batch", `not json`, http.StatusBadRequest)
	doJSON(t, "POST", base+"/missing/batch", `{"seeds":[1]}`, http.StatusNotFound)
	big, _ := json.Marshal(map[string]interface{}{"seeds": make([]int, maxBatchSeeds+1)})
	doJSON(t, "POST", base+"/g/batch", string(big), http.StatusBadRequest)
}

// TestBatchScoresFinite sanity-checks the scores the batch endpoint
// reports, not just their agreement with the single path.
func TestBatchScoresFinite(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	out := doJSON(t, "POST", base+"/g/batch", `{"seeds":[2,3],"top":3}`, http.StatusOK)
	for _, raw := range out["results"].([]interface{}) {
		slot := raw.(map[string]interface{})
		rs := slot["results"].([]interface{})
		if len(rs) != 3 {
			t.Fatalf("slot results = %v", rs)
		}
		top := rs[0].(map[string]interface{})
		if top["node"].(float64) != slot["seed"].(float64) {
			t.Fatalf("seed should rank first: %v", slot)
		}
		for _, r := range rs {
			score := r.(map[string]interface{})["score"].(float64)
			if math.IsNaN(score) || math.IsInf(score, 0) || score <= 0 {
				t.Fatalf("bad score %v", score)
			}
		}
	}
}

// newHTTPServer is newTestServer for a caller-constructed Server.
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
