package server

import (
	"bytes"
	"strings"
	"testing"

	"bear"
)

// FuzzSniffLoad throws arbitrary upload bodies at the format sniffer and
// the parsers behind it: no input may panic, and whatever parses must be
// a usable graph.
func FuzzSniffLoad(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("0 1 2.5\n# comment\n3 4\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n3 3 1\n1 2 1\n"))
	f.Add([]byte("%%matrixmarket garbage"))
	f.Add([]byte("not numbers at all"))
	f.Add([]byte("0 1\n\xff\xfe binary junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := sniffLoad(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("sniffLoad returned nil graph with nil error")
		}
		_ = g.N()
	})
}

// FuzzReadSnapshot feeds arbitrary bytes to the registry restorer; corrupt
// input must error out without panicking or registering partial state.
func FuzzReadSnapshot(f *testing.F) {
	s := New()
	g, err := sniffLoad(strings.NewReader("0 1\n1 2\n2 0\n"))
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Add("g", g, bear.Options{}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("BEARSV01 junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := New()
		if err := fresh.ReadSnapshot(bytes.NewReader(data)); err != nil {
			if len(fresh.graphs) != 0 {
				t.Fatal("failed restore left graphs registered")
			}
		}
	})
}

// FuzzCandidatesRequest throws arbitrary bodies at the /candidates request
// parser: no input may panic, and whatever validates must come back
// normalized — seeds in range, K in [1, n].
func FuzzCandidatesRequest(f *testing.F) {
	f.Add([]byte(`{"seeds":[0,1,2],"k":5}`))
	f.Add([]byte(`{"seeds":[0]}`))
	f.Add([]byte(`{"seeds":[],"k":0}`))
	f.Add([]byte(`{"seeds":[-1],"k":-7}`))
	f.Add([]byte(`{"seeds":[9999999999999999999]}`))
	f.Add([]byte(`{"k":3}`))
	f.Add([]byte(`{"seeds":"zero"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte("\xff\xfe{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 100
		req, err := parseCandidatesRequest(bytes.NewReader(data), n)
		if err != nil {
			return
		}
		if len(req.Seeds) == 0 || len(req.Seeds) > maxBatchSeeds {
			t.Fatalf("validated request has %d seeds", len(req.Seeds))
		}
		for _, s := range req.Seeds {
			if s < 0 || s >= n {
				t.Fatalf("validated request kept out-of-range seed %d", s)
			}
		}
		if req.K <= 0 || req.K > n {
			t.Fatalf("validated request has K=%d outside [1,%d]", req.K, n)
		}
	})
}
