package server

import "net/http"

// Liveness vs readiness: /healthz answers 200 whenever the process can
// serve HTTP at all — it bypasses admission control so probes work under
// overload, and a load balancer using it only restarts truly dead
// processes. /readyz is the stricter signal a traffic router wants: it
// answers 200 only when this instance can actually answer queries (at
// least one graph registered and no snapshot restore mid-swap), so a
// coordinator ejects a rebuilding or still-restoring shard instead of
// timing out on it. Per-graph rebuild state rides along in the body —
// a background rebuild does NOT unready the shard (queries keep serving
// the pre-rebuild snapshot) but routers may prefer replicas that are not
// rebuilding.

// GraphReadiness is one graph's slice of the readiness report.
type GraphReadiness struct {
	Rebuilding bool `json:"rebuilding"`
	Pending    int  `json:"pending_updates"`
}

// ReadyReport is the GET /readyz body. Status is "ready", "empty" (no
// graphs registered), or "restoring" (a snapshot restore is replacing the
// registry); only "ready" comes with HTTP 200.
type ReadyReport struct {
	Status string                    `json:"status"`
	Graphs map[string]GraphReadiness `json:"graphs"`
}

// Readiness computes the current readiness report.
func (s *Server) Readiness() ReadyReport {
	rep := ReadyReport{Status: "ready", Graphs: map[string]GraphReadiness{}}
	if s.restoring.Load() {
		rep.Status = "restoring"
	}
	s.mu.RLock()
	entries := make(map[string]*entry, len(s.graphs))
	for name, e := range s.graphs {
		entries[name] = e
	}
	s.mu.RUnlock()
	if len(entries) == 0 && rep.Status == "ready" {
		rep.Status = "empty"
	}
	// Readiness of each graph is read outside s.mu: RebuildInProgress and
	// PendingNodes take the Dynamic's own lock, never the registry's.
	for name, e := range entries {
		rep.Graphs[name] = GraphReadiness{
			Rebuilding: e.dyn.RebuildInProgress(),
			Pending:    e.dyn.PendingNodes(),
		}
	}
	return rep
}

// handleReady serves GET /readyz. Like /healthz it bypasses admission
// control, so a saturated-but-working shard still reports ready instead
// of being ejected for slowness it is already shedding.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	rep := s.Readiness()
	status := http.StatusOK
	if rep.Status != "ready" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}
