package server

import (
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// StatusClientClosedRequest is the (de-facto standard, nginx-originated)
// status reported when the client went away before the query finished.
const StatusClientClosedRequest = 499

// withRecovery converts a handler panic into a logged 500 instead of
// killing the connection with an opaque EOF. http.ErrAbortHandler keeps
// its special meaning and is re-raised untouched.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.metrics().panics.Inc()
			s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			// If the handler already wrote a response this write fails
			// silently, which is the best that can be done post-panic.
			writeJSON(w, http.StatusInternalServerError,
				map[string]string{"error": "internal server error"})
		}()
		next.ServeHTTP(w, r)
	})
}

// withAdmission bounds the number of in-flight requests. A request that
// cannot get a slot within AcquireTimeout is shed with 503 + Retry-After
// rather than queueing unboundedly; a client that gives up while waiting
// gets 499. Health checks are routed around this middleware so probes
// still answer under overload.
func (s *Server) withAdmission(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.MaxConcurrent <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		s.semOnce.Do(func() { s.sem = make(chan struct{}, s.MaxConcurrent) })
		select {
		case s.sem <- struct{}{}:
		default:
			// Saturated: wait briefly for a slot, then shed.
			timeout := s.AcquireTimeout
			if timeout <= 0 {
				timeout = 250 * time.Millisecond
			}
			t := time.NewTimer(timeout)
			defer t.Stop()
			select {
			case s.sem <- struct{}{}:
			case <-t.C:
				s.metrics().shed.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
				writeJSON(w, http.StatusServiceUnavailable,
					map[string]string{"error": "server at capacity; retry later"})
				return
			case <-r.Context().Done():
				writeJSON(w, StatusClientClosedRequest,
					map[string]string{"error": "client closed request"})
				return
			}
		}
		defer func() { <-s.sem }()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) retryAfterSeconds() int {
	if s.RetryAfter > 0 {
		return int((s.RetryAfter + time.Second - 1) / time.Second)
	}
	return 1
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}
