package server

import (
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// GET /v1/graphs/{name}/accuracy — the sampled accuracy self-check for
// BEAR-Approx deployments: k random seeds are queried through the plain
// (possibly drop-tolerance-degraded) solver, their residuals are measured
// against the retained exact H, and each is compared to a refined solve.
// The report quantifies, on live data, exactly how much accuracy the
// configured drop tolerance is costing and that refinement recovers it.

// AccuracySample is one seed's measurement in an accuracy report.
type AccuracySample struct {
	Seed int `json:"seed"`
	// Residual is the score-level defect ‖c·q − H·x‖∞ of the plain query
	// result; rounding-level for BEAR-Exact, the drop-induced error for
	// BEAR-Approx.
	Residual float64 `json:"residual"`
	// Cosine is the cosine similarity between the plain and the refined
	// score vectors; 1 means the drop tolerance cost nothing for this seed.
	Cosine float64 `json:"cosine_vs_refined"`
	// Sweeps is how many refinement sweeps the refined solve needed.
	Sweeps int `json:"refine_sweeps"`
	// RefinedResidual is the refined solve's final score-level residual.
	RefinedResidual float64 `json:"refined_residual"`
}

// AccuracyReport is the JSON document served by the accuracy endpoint.
type AccuracyReport struct {
	Graph       string           `json:"graph"`
	DropTol     float64          `json:"drop_tolerance"`
	Tol         float64          `json:"refine_tolerance"`
	Samples     []AccuracySample `json:"samples"`
	MaxResidual float64          `json:"max_residual"`
	MinCosine   float64          `json:"min_cosine"`
}

func (s *Server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	if e.dyn.PendingNodes() > 0 {
		writeError(w, errBadRequest("accuracy check requires a rebuild after updates"))
		return
	}
	p := e.dyn.Precomputed()
	if p.H == nil {
		writeError(w, errBadRequest("graph was preprocessed without the retained exact operator; re-register it to enable accuracy checks"))
		return
	}
	k := 8
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, errBadRequest("k %q must be a positive integer", v))
			return
		}
		if n > 64 {
			n = 64 // bound the work one probe can demand
		}
		k = n
	}
	tol := 1e-9
	if v := r.URL.Query().Get("tol"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(t) || math.IsInf(t, 0) || t <= 0 {
			writeError(w, errBadRequest("tol %q must be a finite positive tolerance", v))
			return
		}
		tol = t
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()

	// Fresh seeds each probe: the point is to sample new parts of the graph
	// over time, not to produce a cacheable answer.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	report := AccuracyReport{
		Graph:   name,
		DropTol: e.opts.DropTol,
		Tol:     tol,
		Samples: make([]AccuracySample, 0, k),
	}
	report.MinCosine = math.Inf(1)
	q := make([]float64, p.N)
	plain := make([]float64, p.N)
	for i := 0; i < k; i++ {
		seed := rng.Intn(p.N)
		q[seed] = 1
		ws := p.AcquireWorkspace()
		err := p.QueryToCtx(ctx, plain, seed, ws)
		p.ReleaseWorkspace(ws)
		if err != nil {
			writeError(w, queryError(err))
			return
		}
		resid, err := p.Residual(plain, q)
		if err != nil {
			writeError(w, queryError(err))
			return
		}
		refined, stats, err := s.refineOne(ctx, e, q, tol)
		if err != nil {
			writeError(w, queryError(err))
			return
		}
		report.Samples = append(report.Samples, AccuracySample{
			Seed:            seed,
			Residual:        resid,
			Cosine:          cosineSim(plain, refined),
			Sweeps:          stats.Sweeps,
			RefinedResidual: stats.Residual,
		})
		if resid > report.MaxResidual {
			report.MaxResidual = resid
		}
		q[seed] = 0
	}
	for _, sm := range report.Samples {
		if sm.Cosine < report.MinCosine {
			report.MinCosine = sm.Cosine
		}
	}
	writeJSON(w, http.StatusOK, report)
}

// cosineSim is the cosine similarity of two score vectors; 0 when either
// is all-zero.
func cosineSim(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
