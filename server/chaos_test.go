package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bear/internal/fault"
)

// TestChaosQueriesDuringRebuild hammers a graph with concurrent queries,
// edge updates, and overlapping background rebuilds. Every query must
// answer 200 with finite, seed-ranked scores — the rebuild swap may never
// surface a torn or empty state — and the pending set must drain once the
// dust settles. Run with -race to check the swap protocol's publication.
func TestChaosQueriesDuringRebuild(t *testing.T) {
	s, ts := newTestServer(t)
	s.RebuildThreshold = 0 // rebuilds driven explicitly below
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 128)

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seed := w * 7
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(fmt.Sprintf("%s/g/query?seed=%d&top=5", base, seed))
				if err != nil {
					errs <- err.Error()
					return
				}
				var out struct {
					Results []ScoredNode `json:"results"`
					Error   string       `json:"error"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("query seed %d: status %d err %v body %q", seed, resp.StatusCode, err, out.Error)
					return
				}
				if len(out.Results) == 0 || out.Results[0].Node != seed {
					errs <- fmt.Sprintf("query seed %d: bad results %v", seed, out.Results)
					return
				}
				for _, r := range out.Results {
					if math.IsNaN(r.Score) || math.IsInf(r.Score, 0) || r.Score < 0 {
						errs <- fmt.Sprintf("query seed %d: invalid score %v", seed, r.Score)
						return
					}
				}
			}
		}(w)
	}

	// Updates and overlapping async rebuilds; 409/202 are both fine, torn
	// state is not.
	for i := 0; i < 10; i++ {
		body := fmt.Sprintf(`{"op":"add","u":%d,"v":%d}`, i%20, 40+i)
		doJSON(t, "POST", base+"/g/edges", body, http.StatusOK)
		resp, err := http.Post(base+"/g/rebuild?async=1", "application/json", nil)
		if err != nil {
			t.Fatalf("async rebuild: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async rebuild: status %d", resp.StatusCode)
		}
	}
	drainPending(t, base+"/g")
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestChaosCacheInvalidationRace checks the cache's one correctness
// obligation under concurrency: after an edge update is acknowledged, no
// request may ever be answered with a pre-update score vector. A single
// checker thread alternates drastic weight updates with verified queries
// while read-only workers keep the cache hot and another goroutine fires
// overlapping async rebuilds; the checker compares every HTTP answer
// against a fresh direct solve of the post-update state. Tolerance is
// 1e-9, not bit-identity, because a concurrent rebuild may swap the
// Woodbury-corrected state for a refactorized one mid-check — same graph,
// different floating-point path. Run with -race.
func TestChaosCacheInvalidationRace(t *testing.T) {
	s, ts := newTestServer(t)
	s.RebuildThreshold = 0 // rebuilds driven explicitly below
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	e, ok := s.lookup("g")
	if !ok {
		t.Fatal("graph not registered")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 64)

	// Read-only workers: their only job is to keep cache entries and
	// in-flight solves alive so the checker races against a warm cache.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(fmt.Sprintf("%s/g/query?seed=%d&top=5", base, w*3))
				if err != nil {
					errs <- err.Error()
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("reader seed %d: status %d", w*3, resp.StatusCode)
					return
				}
			}
		}(w)
	}

	// Overlapping async rebuilds: they change no semantic state (they only
	// fold already-accepted updates), but each swap bumps the epoch and
	// must not resurrect older entries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			resp, err := http.Post(base+"/g/rebuild?async=1", "application/json", nil)
			if err != nil {
				errs <- err.Error()
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Sprintf("async rebuild: status %d", resp.StatusCode)
				return
			}
		}
	}()

	// The checker is the only goroutine that mutates the graph, so between
	// its update and its verification the semantic state is fixed.
	const checkSeed = 5
	for i := 0; i < 15; i++ {
		body := fmt.Sprintf(`{"op":"add","u":%d,"v":%d,"w":30}`, checkSeed, 30+i)
		doJSON(t, "POST", base+"/g/edges", body, http.StatusOK)
		expected, err := e.dyn.QueryCtx(context.Background(), checkSeed)
		if err != nil {
			t.Fatalf("round %d: direct solve: %v", i, err)
		}
		out := doJSON(t, "GET", fmt.Sprintf("%s/g/query?seed=%d&top=8", base, checkSeed), "", http.StatusOK)
		for _, raw := range out["results"].([]interface{}) {
			r := raw.(map[string]interface{})
			node := int(r["node"].(float64))
			got := r["score"].(float64)
			if math.Abs(got-expected[node]) > 1e-9 {
				t.Fatalf("round %d: stale score for node %d: served %v, post-update state says %v",
					i, node, got, expected[node])
			}
		}
	}
	close(stop)
	wg.Wait()
	drainPending(t, base+"/g")
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestLoadShedding fills the admission semaphore by hand and verifies the
// next request is shed with 503 + Retry-After while /healthz, which
// bypasses admission, still answers.
func TestLoadShedding(t *testing.T) {
	s, ts := newTestServer(t)
	s.MaxConcurrent = 1
	s.AcquireTimeout = 5 * time.Millisecond
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	// Occupy the only slot (the PUT above lazily initialized the
	// semaphore through the middleware).
	s.sem <- struct{}{}
	resp, err := http.Get(base + "/g/query?seed=0")
	if err != nil {
		t.Fatalf("shed request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	doJSON(t, "GET", ts.URL+"/healthz", "", http.StatusOK)
	<-s.sem // release
	doJSON(t, "GET", base+"/g/query?seed=0", "", http.StatusOK)
}

// TestQueryTimeout: with an impossible deadline every query reports 504,
// and removing it restores service — the deadline cancels work, it does
// not poison state.
func TestQueryTimeout(t *testing.T) {
	s, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	s.QueryTimeout = time.Nanosecond
	doJSON(t, "GET", base+"/g/query?seed=0", "", http.StatusGatewayTimeout)
	doJSON(t, "POST", base+"/g/ppr", `{"seeds":{"1":1}}`, http.StatusGatewayTimeout)
	s.QueryTimeout = 0
	doJSON(t, "GET", base+"/g/query?seed=0", "", http.StatusOK)
}

// TestPanicRecovery: a panicking handler yields a logged 500, not a
// dropped connection; http.ErrAbortHandler keeps its meaning.
func TestPanicRecovery(t *testing.T) {
	s := New()
	h := s.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic answered %d, want 500", rec.Code)
	}
	var out map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["error"] == "" {
		t.Fatalf("panic response body %q", rec.Body.String())
	}

	abort := s.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("http.ErrAbortHandler was swallowed")
		}
	}()
	abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
}

// TestSnapshotRestoreBitIdentical saves the registry — pending Woodbury
// updates included — restores it into a fresh server, and requires every
// query response to match byte-for-byte.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	s, ts := newTestServer(t)
	s.RebuildThreshold = 0
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	doJSON(t, "POST", base+"/g/edges", `{"op":"add","u":0,"v":70}`, http.StatusOK)
	doJSON(t, "POST", base+"/g/edges", `{"op":"add","u":3,"v":71,"w":2.5}`, http.StatusOK)

	path := filepath.Join(t.TempDir(), "registry.snap")
	s.SnapshotPath = path
	out := doJSON(t, "POST", ts.URL+"/v1/snapshot", "", http.StatusOK)
	if int(out["graphs"].(float64)) != 1 {
		t.Fatalf("snapshot reported %v", out)
	}

	s2 := New()
	if err := s2.LoadSnapshot(path); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	for _, q := range []string{
		"/v1/graphs/g/query?seed=0&top=10",
		"/v1/graphs/g/query?seed=3&top=10",
		"/v1/graphs/g/pagerank?top=10",
	} {
		a := getBody(t, ts.URL+q)
		b := getBody(t, ts2.URL+q)
		if !bytes.Equal(a, b) {
			t.Fatalf("restored answer differs for %s:\n%s\nvs\n%s", q, a, b)
		}
	}
	// The restored server still has the pending updates and can fold them.
	stats := doJSON(t, "GET", ts2.URL+"/v1/graphs/g", "", http.StatusOK)
	if stats["pending_updates"].(float64) != 2 {
		t.Fatalf("restored pending = %v", stats["pending_updates"])
	}
	doJSON(t, "POST", ts2.URL+"/v1/graphs/g/rebuild", "", http.StatusOK)
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotCorruptionRejected: a snapshot with any byte flipped, or cut
// short at any point, must be refused on restore — the running registry is
// left untouched.
func TestSnapshotCorruptionRejected(t *testing.T) {
	s, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)
	doJSON(t, "POST", base+"/g/edges", `{"op":"add","u":0,"v":70}`, http.StatusOK)

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	valid := buf.Bytes()

	s2 := New()
	if err := s2.ReadSnapshot(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	step := 1 + len(valid)/97
	for off := 0; off < len(valid); off += step {
		fresh := New()
		if err := fresh.ReadSnapshot(bytes.NewReader(fault.Flip(valid, int64(off), 0))); err == nil {
			t.Fatalf("snapshot flip at offset %d of %d accepted", off, len(valid))
		}
		if len(fresh.graphs) != 0 {
			t.Fatalf("flip at offset %d left %d graphs registered", off, len(fresh.graphs))
		}
	}
	for cut := 0; cut < len(valid); cut += step {
		if err := New().ReadSnapshot(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("snapshot truncated to %d of %d bytes accepted", cut, len(valid))
		}
	}

	// A failed restore must not clobber an existing registry.
	before := len(s2.graphs)
	if err := s2.ReadSnapshot(bytes.NewReader(valid[:len(valid)/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if len(s2.graphs) != before {
		t.Fatal("failed restore modified the registry")
	}
}

// TestSnapshotAtomicWrite: SaveSnapshot leaves no temp litter and a crash
// simulated by a pre-existing target file still ends with a valid file.
func TestSnapshotAtomicWrite(t *testing.T) {
	s, ts := newTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v1/graphs/g", edgeListBody(), http.StatusCreated)

	dir := t.TempDir()
	path := filepath.Join(dir, "reg.snap")
	if err := os.WriteFile(path, []byte("stale garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot over stale file: %v", err)
	}
	if err := New().LoadSnapshot(path); err != nil {
		t.Fatalf("snapshot written over stale file unreadable: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestUploadWithFaultyBody: a body that dies mid-stream produces a clean
// 400, not a hung handler or a half-registered graph.
func TestUploadWithFaultyBody(t *testing.T) {
	_, ts := newTestServer(t)
	body := &fault.FlakyReader{R: strings.NewReader(edgeListBody()), N: 64}
	req, err := http.NewRequest("PUT", ts.URL+"/v1/graphs/g", body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		// Depending on timing the transport may surface the injected
		// error itself or deliver the server's 400.
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("flaky upload answered %d, want 400", resp.StatusCode)
		}
	}
	resp2, err := http.Get(ts.URL + "/v1/graphs/g")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("half-uploaded graph got registered (status %d)", resp2.StatusCode)
	}
}
