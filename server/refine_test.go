package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestQueryRefineParam: ?refine=<tol> answers through iterative refinement
// and caches under a key distinct from the plain query's.
func TestQueryRefineParam(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g?drop=0.001", edgeListBody(), http.StatusCreated)

	get := func(url string) (map[string]interface{}, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		status := resp.Header.Get("X-Cache")
		return doJSON(t, "GET", url, "", http.StatusOK), status
	}

	plain, _ := get(base + "/g/query?seed=3&top=5")
	refined, _ := get(base + "/g/query?seed=3&top=5&refine=1e-9")
	if len(refined["results"].([]interface{})) != 5 {
		t.Fatalf("refined query returned %v results, want 5", refined["results"])
	}
	// Same seed with and without refine must not collide in the cache: the
	// first refined request after the plain one still reports a miss.
	resp, err := http.Get(base + "/g/query?seed=7&top=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(base + "/g/query?seed=7&top=5&refine=1e-9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("refined query after plain query: X-Cache %q, want miss (key collision)", got)
	}
	_ = plain
}

// TestRefineValidation covers the parameter gates: malformed tolerances,
// the ei combination, and pending updates all fail with 400.
func TestRefineValidation(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	for _, q := range []string{"refine=abc", "refine=-1", "refine=NaN", "refine=Inf"} {
		doJSON(t, "GET", base+"/g/query?seed=0&"+q, "", http.StatusBadRequest)
	}
	doJSON(t, "GET", base+"/g/query?seed=0&ei=1&refine=1e-9", "", http.StatusBadRequest)

	// A pending update blocks refined queries (and the accuracy probe) the
	// same way it blocks effective importance.
	doJSON(t, "POST", base+"/g/edges", `{"op":"add","u":0,"v":5,"w":2}`, http.StatusOK)
	doJSON(t, "GET", base+"/g/query?seed=0&refine=1e-9", "", http.StatusBadRequest)
	doJSON(t, "POST", base+"/g/batch?refine=1e-9", `{"seeds":[0,1]}`, http.StatusBadRequest)
	doJSON(t, "POST", base+"/g/ppr?refine=1e-9", `{"seeds":{"0":1}}`, http.StatusBadRequest)
	doJSON(t, "GET", base+"/g/accuracy", "", http.StatusBadRequest)

	// Refinement without a tolerance (refine=0) is the plain path and keeps
	// working with pending updates.
	doJSON(t, "GET", base+"/g/query?seed=0&refine=0", "", http.StatusOK)
}

// TestBatchRefineMatchesQuery: a refined batch shares cache entries with
// refined single-seed queries and returns the same ranked results.
func TestBatchRefineMatchesQuery(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g?drop=0.001", edgeListBody(), http.StatusCreated)

	single := doJSON(t, "GET", base+"/g/query?seed=2&top=4&refine=1e-9", "", http.StatusOK)
	batch := doJSON(t, "POST", base+"/g/batch?refine=1e-9", `{"seeds":[2,3],"top":4}`, http.StatusOK)
	results := batch["results"].([]interface{})
	first := results[0].(map[string]interface{})
	if first["cache"] != "hit" {
		t.Fatalf("batch seed 2 should hit the refined single-query cache entry, got %v", first["cache"])
	}
	wantJSON, gotJSON := single["results"], first["results"]
	if len(wantJSON.([]interface{})) != len(gotJSON.([]interface{})) {
		t.Fatalf("batch and single refined results differ in length")
	}
	for i := range wantJSON.([]interface{}) {
		w := wantJSON.([]interface{})[i].(map[string]interface{})
		g := gotJSON.([]interface{})[i].(map[string]interface{})
		if w["node"] != g["node"] || w["score"] != g["score"] {
			t.Fatalf("rank %d: batch %v, single %v", i, g, w)
		}
	}
}

// TestAccuracyEndpoint: the sampled self-check reports per-seed residuals
// and cosine similarity against refined solves.
func TestAccuracyEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g?drop=0.001", edgeListBody(), http.StatusCreated)

	rep := doJSON(t, "GET", base+"/g/accuracy?k=4", "", http.StatusOK)
	samples := rep["samples"].([]interface{})
	if len(samples) != 4 {
		t.Fatalf("accuracy returned %d samples, want 4", len(samples))
	}
	for _, raw := range samples {
		sm := raw.(map[string]interface{})
		cos := sm["cosine_vs_refined"].(float64)
		if cos <= 0.9 || cos > 1.0000001 {
			t.Errorf("sample %v: cosine %v outside (0.9, 1]", sm["seed"], cos)
		}
		if sm["residual"].(float64) < 0 {
			t.Errorf("sample %v: negative residual", sm["seed"])
		}
		// The refined solve must beat the plain one's defect (or match it at
		// rounding level).
		if rr := sm["refined_residual"].(float64); rr > sm["residual"].(float64)+1e-15 {
			t.Errorf("sample %v: refined residual %v worse than plain %v", sm["seed"], rr, sm["residual"])
		}
	}
	if rep["max_residual"].(float64) < 0 {
		t.Error("negative max_residual")
	}
	if mc := rep["min_cosine"].(float64); mc <= 0.9 {
		t.Errorf("min_cosine %v", mc)
	}

	doJSON(t, "GET", base+"/g/accuracy?k=0", "", http.StatusBadRequest)
	doJSON(t, "GET", base+"/g/accuracy?k=abc", "", http.StatusBadRequest)
	doJSON(t, "GET", base+"/g/accuracy?tol=-1", "", http.StatusBadRequest)
	doJSON(t, "GET", base+"/missing/accuracy", "", http.StatusNotFound)
}

// TestEdgeWeightValidationMirror: the edges endpoint rejects invalid
// weights with a clean 400 before they reach the update layer.
func TestEdgeWeightValidationMirror(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	doJSON(t, "POST", base+"/g/edges", `{"op":"add","u":0,"v":1,"w":-2}`, http.StatusBadRequest)
	doJSON(t, "POST", base+"/g/edges", `{"op":"replace","u":0,"dst":[1,2],"weights":[1,-3]}`, http.StatusBadRequest)
	stats := doJSON(t, "GET", base+"/g", "", http.StatusOK)
	if int(stats["pending_updates"].(float64)) != 0 {
		t.Fatalf("rejected updates left pending=%v", stats["pending_updates"])
	}
}

// TestMetricsScrapeRefine: refined traffic shows up in the refinement
// series and the scrape stays lint-clean (the scrape helper lints). The
// name shares the TestMetricsScrape prefix so the CI scrape-validity step
// picks it up.
func TestMetricsScrapeRefine(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g?drop=0.001", edgeListBody(), http.StatusCreated)
	doJSON(t, "GET", base+"/g/query?seed=1&refine=1e-9", "", http.StatusOK) // miss: counts
	doJSON(t, "GET", base+"/g/query?seed=1&refine=1e-9", "", http.StatusOK) // hit: must not re-count
	doJSON(t, "GET", base+"/g/accuracy?k=2", "", http.StatusOK)             // 2 refined solves

	body := scrape(t, ts.URL)
	for _, want := range []string{
		"bear_refine_queries_total 3",
		"bear_refine_sweeps_total",
		`bear_refine_residual_bucket{le="+Inf"} 3`,
		"bear_refine_residual_sum",
		"bear_refine_residual_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
