package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"bear"
)

// testFixtureGraph rebuilds the same graph edgeListBody serves, so tests
// can compute expected answers with the library directly.
func testFixtureGraph() *bear.Graph {
	return bear.GenerateCavemanHubs(bear.CavemanHubsConfig{
		Communities: 6, Size: 12, PIntra: 0.4, Hubs: 3, HubDeg: 10, Seed: 1,
	})
}

func TestTopKEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v1/graphs/g", edgeListBody(), http.StatusCreated)

	g := testFixtureGraph()
	d, err := bear.NewDynamic(g, bear.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int{0, 40, g.N() - 1} {
		exact, err := d.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		want := bear.TopK(exact, 5)
		out := doJSON(t, "GET", fmt.Sprintf("%s/v1/graphs/g/topk?seed=%d&k=5", ts.URL, seed), "", http.StatusOK)
		results := out["results"].([]interface{})
		if len(results) != len(want) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(results), len(want))
		}
		gotSet := map[int]bool{}
		for _, it := range results {
			gotSet[int(it.(map[string]interface{})["node"].(float64))] = true
		}
		for _, node := range want {
			if !gotSet[node] {
				t.Fatalf("seed %d: exact top-5 node %d missing from %v", seed, node, gotSet)
			}
		}
		if _, ok := out["pruned"].(bool); !ok {
			t.Fatalf("seed %d: response has no boolean pruned field: %v", seed, out)
		}
	}
}

func TestTopKEndpointCachesAndValidates(t *testing.T) {
	_, ts := newTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v1/graphs/g", edgeListBody(), http.StatusCreated)

	get := func(path string) *http.Response {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	first := get("/v1/graphs/g/topk?seed=1&k=3")
	if first.StatusCode != http.StatusOK || first.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request: status %d cache %q", first.StatusCode, first.Header.Get("X-Cache"))
	}
	second := get("/v1/graphs/g/topk?seed=1&k=3")
	if second.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second request: cache %q, want hit", second.Header.Get("X-Cache"))
	}
	// A different k is a different key.
	other := get("/v1/graphs/g/topk?seed=1&k=4")
	if other.Header.Get("X-Cache") != "miss" {
		t.Fatalf("k=4 request: cache %q, want miss", other.Header.Get("X-Cache"))
	}

	doJSON(t, "GET", ts.URL+"/v1/graphs/g/topk?seed=zzz&k=3", "", http.StatusBadRequest)
	doJSON(t, "GET", ts.URL+"/v1/graphs/g/topk?seed=999999&k=3", "", http.StatusBadRequest)
	doJSON(t, "GET", ts.URL+"/v1/graphs/g/topk?seed=1&k=0", "", http.StatusBadRequest)
	doJSON(t, "GET", ts.URL+"/v1/graphs/g/topk?seed=1&k=-2", "", http.StatusBadRequest)
	doJSON(t, "GET", ts.URL+"/v1/graphs/missing/topk?seed=1", "", http.StatusNotFound)
}

func TestCandidatesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v1/graphs/g", edgeListBody(), http.StatusCreated)

	g := testFixtureGraph()
	d, err := bear.NewDynamic(g, bear.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := doJSON(t, "POST", ts.URL+"/v1/graphs/g/candidates", `{"seeds":[0,7,40],"k":5}`, http.StatusOK)
	results := out["results"].([]interface{})
	if len(results) != 3 {
		t.Fatalf("%d result slots, want 3", len(results))
	}
	for _, it := range results {
		slot := it.(map[string]interface{})
		seed := int(slot["seed"].(float64))
		exact, err := d.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		want := bear.TopKCandidates(g, exact, seed, 5)
		cands := slot["candidates"].([]interface{})
		if len(cands) != len(want) {
			t.Fatalf("seed %d: %d candidates, want %d", seed, len(cands), len(want))
		}
		for i, c := range cands {
			node := int(c.(map[string]interface{})["node"].(float64))
			if node != want[i] {
				t.Fatalf("seed %d: candidate[%d] = %d, want %d", seed, i, node, want[i])
			}
			// dappr semantics: never the seed, never an existing out-edge.
			if node == seed || g.HasEdge(seed, node) {
				t.Fatalf("seed %d: candidate %d is the seed or an existing neighbor", seed, node)
			}
		}
	}

	// Per-seed entries are cached: repeating one seed must come back a hit.
	out = doJSON(t, "POST", ts.URL+"/v1/graphs/g/candidates", `{"seeds":[7],"k":5}`, http.StatusOK)
	slot := out["results"].([]interface{})[0].(map[string]interface{})
	if slot["cache"] != "hit" {
		t.Fatalf("repeat seed 7: cache %v, want hit", slot["cache"])
	}
}

func TestCandidatesEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v1/graphs/g", edgeListBody(), http.StatusCreated)

	doJSON(t, "POST", ts.URL+"/v1/graphs/g/candidates", `{"seeds":[]}`, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/v1/graphs/g/candidates", `{"seeds":[99999]}`, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/v1/graphs/g/candidates", `{"seeds":[-1]}`, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/v1/graphs/g/candidates", `not json`, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/v1/graphs/missing/candidates", `{"seeds":[0]}`, http.StatusNotFound)

	big := `{"seeds":[` + strings.Repeat("0,", maxBatchSeeds) + `0]}`
	doJSON(t, "POST", ts.URL+"/v1/graphs/g/candidates", big, http.StatusBadRequest)
}

// TestCandidatesExcludeFreshEdges checks that the epoch-keyed cache does
// not serve stale candidate sets after an edge update makes a former
// candidate an existing neighbor.
func TestCandidatesExcludeFreshEdges(t *testing.T) {
	_, ts := newTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v1/graphs/g", edgeListBody(), http.StatusCreated)

	out := doJSON(t, "POST", ts.URL+"/v1/graphs/g/candidates", `{"seeds":[2],"k":3}`, http.StatusOK)
	cands := out["results"].([]interface{})[0].(map[string]interface{})["candidates"].([]interface{})
	if len(cands) == 0 {
		t.Fatal("no candidates for seed 2")
	}
	top := int(cands[0].(map[string]interface{})["node"].(float64))

	// Accept the link: the top candidate becomes an out-neighbor.
	doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges",
		fmt.Sprintf(`{"op":"add","u":2,"v":%d,"w":1}`, top), http.StatusOK)

	out = doJSON(t, "POST", ts.URL+"/v1/graphs/g/candidates", `{"seeds":[2],"k":3}`, http.StatusOK)
	slot := out["results"].([]interface{})[0].(map[string]interface{})
	if slot["cache"] != "miss" {
		t.Fatalf("post-update request served from cache: %v", slot["cache"])
	}
	for _, c := range slot["candidates"].([]interface{}) {
		if int(c.(map[string]interface{})["node"].(float64)) == top {
			t.Fatalf("node %d still a candidate after becoming a neighbor", top)
		}
	}
}

func TestPPRRejectsAllZeroWeights(t *testing.T) {
	_, ts := newTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v1/graphs/g", edgeListBody(), http.StatusCreated)

	out := doJSON(t, "POST", ts.URL+"/v1/graphs/g/ppr", `{"seeds":{"0":0,"3":0.0}}`, http.StatusBadRequest)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "must not all be zero") {
		t.Fatalf("error %q does not name the all-zero rule", msg)
	}
	// A mix of zero and positive weights stays accepted.
	doJSON(t, "POST", ts.URL+"/v1/graphs/g/ppr", `{"seeds":{"0":0,"3":0.5}}`, http.StatusOK)
}

func TestTopKMetricCounts(t *testing.T) {
	_, ts := newTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v1/graphs/g", edgeListBody(), http.StatusCreated)
	doJSON(t, "POST", ts.URL+"/v1/graphs/g/candidates", `{"seeds":[0],"k":3}`, http.StatusOK)
	doJSON(t, "GET", ts.URL+"/v1/graphs/g/topk?seed=0&k=3", "", http.StatusOK)

	body := scrape(t, ts.URL)
	if !strings.Contains(body, "bear_candidates_requests_total 1") {
		t.Errorf("metrics missing bear_candidates_requests_total 1")
	}
	if !strings.Contains(body, "bear_topk_pruned_total") {
		t.Errorf("metrics missing bear_topk_pruned_total series")
	}
}
