package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bear"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func edgeListBody() string {
	g := bear.GenerateCavemanHubs(bear.CavemanHubsConfig{
		Communities: 6, Size: 12, PIntra: 0.4, Hubs: 3, HubDeg: 10, Seed: 1,
	})
	var buf bytes.Buffer
	if err := g.SaveEdgeList(&buf); err != nil {
		panic(err)
	}
	return buf.String()
}

func doJSON(t *testing.T, method, url, body string, wantStatus int) map[string]interface{} {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d (body %v)", method, url, resp.StatusCode, wantStatus, out)
	}
	return out
}

// drainPending folds every remaining update into a fresh preprocessing
// pass. Posting rebuilds until pending hits zero — rather than waiting
// passively — matters after concurrent update/rebuild churn: the last
// rebuild may have snapshotted the graph before the last update was
// accepted, in which case no amount of waiting drains the residue.
func drainPending(t *testing.T, statsURL string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats := doJSON(t, "GET", statsURL, "", http.StatusOK)
		if int(stats["pending_updates"].(float64)) == 0 && !stats["rebuilding"].(bool) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending never drained: %v", stats)
		}
		resp, err := http.Post(statsURL+"/rebuild?async=1", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
}

// waitForPending polls the stats endpoint until pending_updates reaches
// want (background rebuilds drain it asynchronously).
func waitForPending(t *testing.T, statsURL string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats := doJSON(t, "GET", statsURL, "", http.StatusOK)
		if int(stats["pending_updates"].(float64)) == want && !stats["rebuilding"].(bool) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending never reached %d: %v", want, stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	out := doJSON(t, "GET", ts.URL+"/healthz", "", http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("healthz = %v", out)
	}
}

func TestGraphLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"

	// Upload.
	info := doJSON(t, "PUT", base+"/social", edgeListBody(), http.StatusCreated)
	if info["name"] != "social" || info["nodes"].(float64) <= 0 {
		t.Fatalf("upload info %v", info)
	}

	// List and stats.
	list := doJSON(t, "GET", base, "", http.StatusOK)
	if graphs := list["graphs"].([]interface{}); len(graphs) != 1 {
		t.Fatalf("list = %v", list)
	}
	stats := doJSON(t, "GET", base+"/social", "", http.StatusOK)
	if stats["hubs"].(float64) <= 0 {
		t.Fatalf("stats = %v", stats)
	}

	// Query.
	q := doJSON(t, "GET", base+"/social/query?seed=3&top=5", "", http.StatusOK)
	results := q["results"].([]interface{})
	if len(results) != 5 {
		t.Fatalf("query returned %d results", len(results))
	}
	first := results[0].(map[string]interface{})
	if first["node"].(float64) != 3 {
		t.Fatalf("seed should rank first, got %v", first)
	}

	// PageRank.
	pr := doJSON(t, "GET", base+"/social/pagerank?top=3", "", http.StatusOK)
	if len(pr["results"].([]interface{})) != 3 {
		t.Fatalf("pagerank = %v", pr)
	}

	// PPR.
	ppr := doJSON(t, "POST", base+"/social/ppr", `{"seeds":{"1":0.5,"20":0.5},"top":4}`, http.StatusOK)
	if len(ppr["results"].([]interface{})) != 4 {
		t.Fatalf("ppr = %v", ppr)
	}

	// Delete.
	doJSON(t, "DELETE", base+"/social", "", http.StatusOK)
	doJSON(t, "GET", base+"/social", "", http.StatusNotFound)
}

func TestQueryMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	body := edgeListBody()
	doJSON(t, "PUT", base+"/g", body, http.StatusCreated)

	g, err := bear.LoadEdgeList(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	p, err := bear.Preprocess(g, bear.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Query(7)
	if err != nil {
		t.Fatal(err)
	}
	out := doJSON(t, "GET", base+"/g/query?seed=7&top=1", "", http.StatusOK)
	first := out["results"].([]interface{})[0].(map[string]interface{})
	wantTop := bear.TopK(want, 1)[0]
	if int(first["node"].(float64)) != wantTop {
		t.Fatalf("server top node %v, library %d", first["node"], wantTop)
	}
	if diff := first["score"].(float64) - want[wantTop]; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("server score differs by %g", diff)
	}
}

func TestEdgeUpdatesAndRebuild(t *testing.T) {
	s, ts := newTestServer(t)
	s.RebuildThreshold = 2 // pending counts distinct touched nodes
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	// Add an edge; pending rises.
	out := doJSON(t, "POST", base+"/g/edges", `{"op":"add","u":0,"v":70}`, http.StatusOK)
	if out["pending"].(float64) != 1 || out["rebuilding"].(bool) {
		t.Fatalf("after add: %v", out)
	}
	// The query reflects the new edge.
	q := doJSON(t, "GET", base+"/g/query?seed=0&top=20", "", http.StatusOK)
	found := false
	for _, it := range q["results"].([]interface{}) {
		if it.(map[string]interface{})["node"].(float64) == 70 {
			found = true
		}
	}
	if !found {
		t.Fatal("node 70 missing from top results after adding edge 0->70")
	}

	// Removing from the same node keeps the dirty-node count at one.
	out = doJSON(t, "POST", base+"/g/edges", `{"op":"remove","u":0,"v":70}`, http.StatusOK)
	if out["pending"].(float64) != 1 || out["rebuilding"].(bool) {
		t.Fatalf("after remove on same node: %v", out)
	}
	// A second distinct node reaches the threshold: an automatic rebuild
	// starts in the background while the request returns immediately; the
	// pending count drains to zero once the swap lands.
	doJSON(t, "POST", base+"/g/edges", `{"op":"replace","u":5,"dst":[1,2],"weights":[1,1]}`, http.StatusOK)
	waitForPending(t, base+"/g", 0)

	// Manual rebuild endpoint.
	doJSON(t, "POST", base+"/g/edges", `{"op":"add","u":1,"v":60}`, http.StatusOK)
	doJSON(t, "POST", base+"/g/rebuild", "", http.StatusOK)
	stats := doJSON(t, "GET", base+"/g", "", http.StatusOK)
	if stats["pending_updates"].(float64) != 0 {
		t.Fatalf("pending after rebuild: %v", stats)
	}
}

// TestRebuildModes drives the ?mode= parameter end to end: explicit full
// and incremental rebuilds, the 409 refusal when incremental is
// disqualified, the auto fallback with its recorded reason, and the
// bear_rebuild_* series on /metrics.
func TestRebuildModes(t *testing.T) {
	s, ts := newTestServer(t)
	s.RebuildThreshold = 0 // rebuilds driven explicitly below
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	doJSON(t, "POST", base+"/g/rebuild?mode=bogus", "", http.StatusBadRequest)

	out := doJSON(t, "POST", base+"/g/rebuild?mode=full", "", http.StatusOK)
	if out["mode"] != "full" || out["requested"] != "full" {
		t.Fatalf("full rebuild response %v", out)
	}

	// The handler never learns node roles, so the test peeks at the engine
	// to aim updates: a spoke→hub edge qualifies for the incremental path,
	// a hub update disqualifies it.
	s.mu.RLock()
	e := s.graphs["g"]
	s.mu.RUnlock()
	p := e.dyn.Precomputed()
	spoke, hub := -1, -1
	for u := 0; u < p.N && (spoke < 0 || hub < 0); u++ {
		if p.IsHub(u) {
			if hub < 0 {
				hub = u
			}
		} else if spoke < 0 {
			spoke = u
		}
	}
	if spoke < 0 || hub < 0 {
		t.Fatalf("test graph lacks a spoke/hub pair (spoke=%d hub=%d)", spoke, hub)
	}

	doJSON(t, "POST", base+"/g/edges",
		fmt.Sprintf(`{"op":"add","u":%d,"v":%d,"weight":1.5}`, spoke, hub), http.StatusOK)
	out = doJSON(t, "POST", base+"/g/rebuild?mode=incremental", "", http.StatusOK)
	if out["mode"] != "incremental" || out["blocks_refactored"].(float64) < 1 {
		t.Fatalf("incremental rebuild response %v", out)
	}

	// Dirty a hub: explicit incremental is refused as a state conflict,
	// auto falls back to full and records why.
	doJSON(t, "POST", base+"/g/edges",
		fmt.Sprintf(`{"op":"add","u":%d,"v":%d,"weight":1.5}`, hub, spoke), http.StatusOK)
	doJSON(t, "POST", base+"/g/rebuild?mode=incremental", "", http.StatusConflict)
	out = doJSON(t, "POST", base+"/g/rebuild?mode=auto", "", http.StatusOK)
	if out["mode"] != "full" || out["fallback_reason"] != "hub_dirty" {
		t.Fatalf("auto rebuild after hub update: %v", out)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`bear_rebuild_mode_total{graph="g",mode="incremental"} 1`,
		`bear_rebuild_mode_total{graph="g",mode="full"} 2`,
		`bear_rebuild_fallback_total{graph="g",reason="hub_dirty"} 1`,
		`bear_rebuild_stage_seconds{graph="g",stage="schur_factor"}`,
		`bear_rebuild_blocks_refactored{graph="g"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestServerErrors(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	cases := []struct {
		method, url, body string
		want              int
	}{
		{"PUT", base + "/bad name!", "0 1\n", http.StatusBadRequest},
		{"PUT", base + "/g2", "not an edge list", http.StatusBadRequest},
		{"PUT", base + "/g3?c=2", "0 1\n", http.StatusBadRequest},
		{"PUT", base + "/g3?c=NaN", "0 1\n", http.StatusBadRequest},
		{"PUT", base + "/g3?drop=-1", "0 1\n", http.StatusBadRequest},
		{"PUT", base + "/g3?drop=NaN", "0 1\n", http.StatusBadRequest},
		{"PUT", base + "/g3?drop=+Inf", "0 1\n", http.StatusBadRequest},
		{"PUT", base + "/g3?laplacian=maybe", "0 1\n", http.StatusBadRequest},
		{"GET", base + "/missing", "", http.StatusNotFound},
		{"DELETE", base + "/missing", "", http.StatusNotFound},
		{"GET", base + "/g/query?seed=abc", "", http.StatusBadRequest},
		{"GET", base + "/g/query?seed=99999", "", http.StatusBadRequest},
		{"GET", base + "/g/query?seed=1&top=-2", "", http.StatusBadRequest},
		{"GET", base + "/missing/query?seed=1", "", http.StatusNotFound},
		{"POST", base + "/g/ppr", "{bad json", http.StatusBadRequest},
		{"POST", base + "/g/ppr", `{"seeds":{}}`, http.StatusBadRequest},
		{"POST", base + "/g/ppr", `{"seeds":{"99999":1}}`, http.StatusBadRequest},
		{"POST", base + "/g/ppr", `{"seeds":{"1":-1}}`, http.StatusBadRequest},
		{"POST", base + "/g/edges", `{"op":"teleport","u":0,"v":1}`, http.StatusBadRequest},
		{"POST", base + "/g/edges", `{"op":"remove","u":0,"v":71}`, http.StatusBadRequest},
		{"POST", base + "/missing/rebuild", "", http.StatusNotFound},
	}
	for _, c := range cases {
		doJSON(t, c.method, c.url, c.body, c.want)
	}
}

func TestMatrixMarketUpload(t *testing.T) {
	_, ts := newTestServer(t)
	mm := "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 2 1\n2 3 1\n3 1 1\n"
	info := doJSON(t, "PUT", ts.URL+"/v1/graphs/mm", mm, http.StatusCreated)
	if info["nodes"].(float64) != 3 {
		t.Fatalf("MatrixMarket upload: %v", info)
	}
}

func TestConcurrentQueriesAndUpdates(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w%4 == 0 {
					body := fmt.Sprintf(`{"op":"add","u":%d,"v":%d}`, (w*10+i)%70, (w+i*7)%70)
					resp, err := http.Post(base+"/g/edges", "application/json", strings.NewReader(body))
					if err != nil {
						errs <- err.Error()
						return
					}
					resp.Body.Close()
					continue
				}
				resp, err := http.Get(fmt.Sprintf("%s/g/query?seed=%d", base, (w*13+i)%70))
				if err != nil {
					errs <- err.Error()
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("query status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestConcurrentMixedTraffic hammers one graph with every kind of serving
// traffic at once — single-seed queries (including oversized top values
// that must be clamped), distribution queries, PageRank, and edge updates —
// so the race detector can observe the pooled-workspace query path and the
// Woodbury update path interleaving.
func TestConcurrentMixedTraffic(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/graphs"
	doJSON(t, "PUT", base+"/g", edgeListBody(), http.StatusCreated)

	var wg sync.WaitGroup
	errs := make(chan string, 128)
	get := func(url string) {
		resp, err := http.Get(url)
		if err != nil {
			errs <- err.Error()
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Sprintf("GET %s: status %d", url, resp.StatusCode)
		}
	}
	post := func(url, body string) {
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			errs <- err.Error()
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Sprintf("POST %s: status %d", url, resp.StatusCode)
		}
	}
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch w % 4 {
				case 0: // edge updates
					post(base+"/g/edges",
						fmt.Sprintf(`{"op":"add","u":%d,"v":%d,"weight":1}`, (w*11+i)%70, (w+i*5)%70))
				case 1: // queries with an oversized top: must clamp, not 400
					get(fmt.Sprintf("%s/g/query?seed=%d&top=999999", base, (w*13+i)%70))
				case 2: // personalized PageRank (distribution query path)
					post(base+"/g/ppr",
						fmt.Sprintf(`{"seeds":{"%d":1,"%d":2},"top":5}`, (w*7+i)%70, (w+i*3)%70))
				default: // uniform PageRank
					get(base + "/g/pagerank?top=10")
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestAddProgrammatic(t *testing.T) {
	s := New()
	g := bear.GenerateErdosRenyi(50, 200, 2)
	if err := s.Add("er", g, bear.Options{}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := s.Add("", g, bear.Options{}); err == nil {
		t.Fatal("expected name validation error")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	doJSON(t, "GET", ts.URL+"/v1/graphs/er", "", http.StatusOK)
}
