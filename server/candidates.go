package server

// The link-prediction workload: GET /topk answers hybrid top-k queries
// (local-push bounds pruning the exact solve when they certify the set),
// and POST /candidates ranks per-seed link-prediction candidates — top-k
// by RWR score excluding the seed and its existing out-neighbors — through
// the result cache and the blocked multi-RHS batch solver.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"bear"
	"bear/internal/obsv"
	"bear/internal/resultcache"
)

// cachedTopK is one cached hybrid top-k answer. The stats that describe
// *how* it was computed are cached along with it so hits report the same
// pruned/fallback fields the original solve did.
type cachedTopK struct {
	results  []ScoredNode
	pruned   bool
	fallback string
}

func (c *cachedTopK) CacheBytes() int64 { return int64(len(c.results))*24 + 32 }

// parseK reads the ?k= parameter, defaulting to 10 and clamping to the
// node count (mirroring parseTop's contract for the query endpoint).
func parseK(r *http.Request, n int) (int, error) {
	v := r.URL.Query().Get("k")
	if v == "" {
		return min(10, n), nil
	}
	k, err := strconv.Atoi(v)
	if err != nil || k <= 0 {
		return 0, errBadRequest("k %q must be a positive integer", v)
	}
	if k > n {
		k = n
	}
	return k, nil
}

// handleTopK answers GET /v1/graphs/{name}/topk?seed=<id>&k=<count> with
// the top-k nodes by exact RWR score. The solve is the hybrid path: the
// node set is always identical to ranking the full exact solve, but when
// the push bound certifies the set early the exact solve is skipped
// entirely (response field "pruned", metric bear_topk_pruned_total).
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	seedStr := r.URL.Query().Get("seed")
	seed, err := strconv.Atoi(seedStr)
	if err != nil {
		writeError(w, errBadRequest("seed %q must be an integer", seedStr))
		return
	}
	n := e.dyn.Graph().N()
	if seed < 0 || seed >= n {
		writeError(w, errBadRequest("seed %d out of range [0,%d)", seed, n))
		return
	}
	k, err := parseK(r, n)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ctx, tr, debug := s.traceContext(ctx, r)
	start := time.Now()
	cache := s.resultCache()
	key := resultcache.Key{
		Gen:   e.gen,
		Epoch: e.dyn.Epoch(),
		Hash:  e.hasher("topk").Int(seed).Int(k).Sum(),
	}
	status := "hit"
	sw := obsv.FromContext(ctx).Start(obsv.SpanCacheLookup)
	v, ok := cache.Get(key)
	sw.Stop()
	if !ok {
		var shared bool
		v, shared, err = s.flight.Do(ctx, key, func() (resultcache.Value, error) {
			res, err := e.dyn.QueryTopKCtx(ctx, seed, k)
			if err != nil {
				return nil, err
			}
			if res.Stats.Pruned {
				s.metrics().topkPruned.Inc()
			}
			out := make([]ScoredNode, len(res.Nodes))
			for i, node := range res.Nodes {
				out[i] = ScoredNode{Node: node, Score: res.Scores[i]}
			}
			c := &cachedTopK{results: out, pruned: res.Stats.Pruned, fallback: res.Stats.Fallback}
			cache.Put(key, c)
			return c, nil
		})
		if err != nil {
			writeError(w, queryError(err))
			return
		}
		status = "miss"
		if shared {
			status = "coalesced"
		}
	}
	res := v.(*cachedTopK)
	s.logSlow("topk", name, fmt.Sprintf("seed=%d k=%d pruned=%v", seed, k, res.pruned),
		status, time.Since(start), tr)
	w.Header().Set("X-Cache", status)
	resp := map[string]interface{}{
		"graph":   name,
		"seed":    seed,
		"k":       k,
		"pruned":  res.pruned,
		"results": res.results,
	}
	if res.fallback != "" {
		resp["fallback"] = res.fallback
	}
	if debug {
		resp["trace"] = traceSpans(tr)
	}
	writeJSON(w, http.StatusOK, resp)
}

type candidatesRequest struct {
	Seeds []int `json:"seeds"`
	K     int   `json:"k"`
}

// parseCandidatesRequest decodes and validates one /candidates body
// against a graph of n nodes, returning the request with K defaulted (10)
// and clamped to n. It is a pure function of (body, n) so the fuzz target
// can drive it directly.
func parseCandidatesRequest(body io.Reader, n int) (candidatesRequest, error) {
	var req candidatesRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return req, errBadRequest("decoding body: %v", err)
	}
	if len(req.Seeds) == 0 {
		return req, errBadRequest("seeds must not be empty")
	}
	if len(req.Seeds) > maxBatchSeeds {
		return req, errBadRequest("batch of %d seeds exceeds the limit of %d", len(req.Seeds), maxBatchSeeds)
	}
	for _, seed := range req.Seeds {
		if seed < 0 || seed >= n {
			return req, errBadRequest("seed %d out of range [0,%d)", seed, n)
		}
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > n {
		req.K = n
	}
	return req, nil
}

// CandidateSeedResult is one seed's slot in a /candidates response.
type CandidateSeedResult struct {
	Seed       int          `json:"seed"`
	Cache      string       `json:"cache"` // hit | miss
	Candidates []ScoredNode `json:"candidates"`
}

// handleCandidates answers POST /v1/graphs/{name}/candidates: for each
// seed, the k highest-scoring nodes that are not the seed and not already
// among its out-neighbors — the standard RWR link-prediction candidate
// set. Per-seed results are cached under their own key kind; all misses
// are solved together through the blocked multi-RHS batch solver.
func (s *Server) handleCandidates(w http.ResponseWriter, r *http.Request) {
	s.metrics().candidatesRequests.Inc()
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	g := e.dyn.Graph()
	req, err := parseCandidatesRequest(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes), g.N())
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ctx, tr, debug := s.traceContext(ctx, r)
	start := time.Now()
	cache := s.resultCache()
	// One epoch read covers the batch (see handleBatch): entries written
	// under it can only be fresher than the key promises. The exclusion
	// edges come from g, captured alongside.
	epoch := e.dyn.Epoch()
	out := make([]CandidateSeedResult, len(req.Seeds))
	keys := make([]resultcache.Key, len(req.Seeds))
	var missIdx []int
	sw := tr.Start(obsv.SpanCacheLookup)
	for i, seed := range req.Seeds {
		h := e.hasher("candidates").Int(seed).Int(req.K)
		keys[i] = resultcache.Key{Gen: e.gen, Epoch: epoch, Hash: h.Sum()}
		if v, ok := cache.Get(keys[i]); ok {
			out[i] = CandidateSeedResult{Seed: seed, Cache: "hit", Candidates: v.(*cachedTopK).results}
		} else {
			missIdx = append(missIdx, i)
		}
	}
	sw.Stop()
	status := "hit"
	if len(missIdx) > 0 {
		status = "miss"
		missSeeds := make([]int, len(missIdx))
		for j, i := range missIdx {
			missSeeds[j] = req.Seeds[i]
		}
		vecs, err := e.dyn.QueryBatchCtx(ctx, missSeeds, 0)
		if err != nil {
			writeError(w, queryError(err))
			return
		}
		for j, i := range missIdx {
			seed := req.Seeds[i]
			ids := bear.TopKCandidates(g, vecs[j], seed, req.K)
			cands := make([]ScoredNode, len(ids))
			for x, u := range ids {
				cands[x] = ScoredNode{Node: u, Score: vecs[j][u]}
			}
			res := &cachedTopK{results: cands}
			cache.Put(keys[i], res)
			out[i] = CandidateSeedResult{Seed: seed, Cache: "miss", Candidates: cands}
		}
	}
	s.logSlow("candidates", name, fmt.Sprintf("seeds=%d k=%d misses=%d", len(req.Seeds), req.K, len(missIdx)),
		status, time.Since(start), tr)
	w.Header().Set("X-Cache", status)
	resp := map[string]interface{}{
		"graph":   name,
		"k":       req.K,
		"results": out,
	}
	if debug {
		resp["trace"] = traceSpans(tr)
	}
	writeJSON(w, http.StatusOK, resp)
}
