// Package server exposes BEAR as an HTTP service: upload a graph once, pay
// preprocessing once, then answer RWR / personalized-PageRank / effective-
// importance queries over REST. Incremental edge updates are served
// exactly through the Woodbury layer and can be folded in with an explicit
// rebuild. All state is in memory; persistence is the caller's concern
// (indexes can be exported with the bear CLI).
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bear"
	"bear/internal/resultcache"
)

// Server is a registry of preprocessed graphs behind an http.Handler. The
// zero value is not usable; construct with New.
type Server struct {
	mu     sync.RWMutex
	graphs map[string]*entry

	// RebuildThreshold folds pending dynamic updates into a fresh
	// preprocessing pass automatically once this many nodes are dirty.
	// Zero disables automatic rebuilds. Threshold-triggered rebuilds run in
	// auto mode: incremental when the pending updates qualify, full
	// otherwise.
	RebuildThreshold int

	// RebuildMaxChurn, when positive, overrides the auto-mode incremental
	// rebuild churn threshold (the largest dirty-node fraction rebuilt
	// incrementally) for every graph registered with this server. Zero
	// keeps the engine default (0.10). Set from the bearserve
	// -rebuild-churn flag.
	RebuildMaxChurn float64

	// MaxBodyBytes caps upload sizes (default 256 MiB).
	MaxBodyBytes int64

	// MaxConcurrent bounds in-flight /v1 requests (default 256). Requests
	// beyond the bound wait up to AcquireTimeout for a slot and are then
	// shed with 503 + Retry-After. Zero or negative disables admission
	// control. Health checks bypass the bound.
	MaxConcurrent int

	// AcquireTimeout is how long a request waits for an admission slot
	// before being shed (default 250ms).
	AcquireTimeout time.Duration

	// RetryAfter is the hint sent with shed requests (default 1s; rounded
	// up to whole seconds for the Retry-After header).
	RetryAfter time.Duration

	// QueryTimeout bounds each query's compute time; queries exceeding it
	// return 504. Zero disables the per-request deadline (client
	// disconnects still cancel the work either way).
	QueryTimeout time.Duration

	// SnapshotPath is where POST /v1/snapshot persists the registry.
	// Empty disables the endpoint.
	SnapshotPath string

	// ErrorLog receives panic stacks and background-rebuild failures
	// (default: the log package's standard logger).
	ErrorLog *log.Logger

	// CacheMaxBytes bounds the result cache (default 64 MiB). Zero or
	// negative disables caching; identical concurrent queries still
	// coalesce into one solve either way.
	CacheMaxBytes int64

	// CacheTTL expires cached results after this duration (default 0 = no
	// expiry). The cache is already exact without a TTL — every update and
	// rebuild makes stale entries unreachable by key — so a TTL is only a
	// memory-pressure lever, not a correctness one.
	CacheTTL time.Duration

	// EnableMetrics serves the Prometheus scrape endpoint at GET /metrics
	// (default true via New). Metrics are collected either way — disabling
	// only unmaps the endpoint.
	EnableMetrics bool

	// TraceSlow, when positive, traces every query's solver stages and logs
	// a structured span breakdown to ErrorLog for queries slower than this
	// threshold. Zero disables slow-query tracing; ?trace=1 per-request
	// traces still work.
	TraceSlow time.Duration

	// DefaultKernel is the query-kernel layout spec applied to graphs
	// registered over the API without an explicit ?kernel= choice: "" or
	// "auto" (per-matrix heuristic), "csr", "hybrid", "sell", "parallel".
	// Set from the bearserve -kernel flag; see internal/sparse/kernel.
	DefaultKernel string

	// DefaultOrdering is the reordering engine applied to graphs
	// registered over the API without an explicit ?ordering= choice: ""
	// or "slashburn" (the paper's), "mindeg", "nd". Set from the
	// bearserve -ordering flag; see internal/ordering.
	DefaultOrdering string

	sem         chan struct{}
	semOnce     sync.Once
	cache       *resultcache.Cache
	cacheOnce   sync.Once
	flight      resultcache.Flight
	metricsOnce sync.Once
	srvMetrics  *serverMetrics

	// restoring is set while ReadSnapshot replaces the registry, flipping
	// GET /readyz to "restoring" so traffic routers drain this instance
	// instead of racing the swap.
	restoring atomic.Bool
}

type entry struct {
	dyn     *bear.Dynamic
	opts    bear.Options
	created time.Time
	gen     uint64 // registration generation; part of every cache key
}

// New returns an empty server with defaults.
func New() *Server {
	return &Server{
		graphs:           make(map[string]*entry),
		RebuildThreshold: 64,
		MaxBodyBytes:     256 << 20,
		MaxConcurrent:    256,
		AcquireTimeout:   250 * time.Millisecond,
		RetryAfter:       time.Second,
		CacheMaxBytes:    64 << 20,
		EnableMetrics:    true,
	}
}

// Handler returns the HTTP routes:
//
//	GET    /healthz                   (liveness: the process serves HTTP)
//	GET    /readyz                    (readiness: ≥1 graph loaded, not mid-restore)
//	GET    /v1/graphs
//	PUT    /v1/graphs/{name}?c=&drop=&laplacian=   (body: edge list or MatrixMarket)
//	GET    /v1/graphs/{name}
//	DELETE /v1/graphs/{name}
//	GET    /v1/graphs/{name}/export   (stream the graph's dynamic state blob)
//	PUT    /v1/graphs/{name}/import   (register a graph from an exported blob)
//	GET    /v1/graphs/{name}/query?seed=&top=&ei=&refine=
//	GET    /v1/graphs/{name}/accuracy?k=&tol=   (sampled residual/cosine self-check)
//	GET    /v1/graphs/{name}/pagerank?top=
//	POST   /v1/graphs/{name}/ppr?refine=      (body: {"seeds":{"3":0.5},"top":10})
//	POST   /v1/graphs/{name}/batch?refine=    (body: {"seeds":[1,2,3],"top":10})
//	POST   /v1/graphs/{name}/edges    (body: {"op":"add","u":1,"v":2,"w":1})
//	POST   /v1/graphs/{name}/rebuild  (?async=1 for a non-blocking rebuild)
//	POST   /v1/snapshot               (persist the registry to SnapshotPath)
//	GET    /v1/stats                  (registry size + result-cache counters)
//	GET    /metrics                   (Prometheus text format; EnableMetrics)
//
// Read endpoints answer through the epoch-keyed result cache and set an
// X-Cache header (hit, miss, or coalesced — the request shared another
// in-flight solve). Query endpoints accept ?trace=1 to include a
// per-stage solver timing breakdown in the response, and ?refine=<tol> to
// answer through iterative refinement against the retained exact operator
// (recovering exact-level accuracy from a drop-tolerance-degraded index;
// requires no pending updates).
//
// All /v1 routes run behind admission control (503 + Retry-After under
// overload) and panic recovery; /healthz, /readyz, and /metrics bypass
// admission so probes and scrapes answer even when the server is
// saturated.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("GET /v1/graphs", s.instrument("list", s.handleList))
	api.HandleFunc("PUT /v1/graphs/{name}", s.instrument("put", s.handlePut))
	api.HandleFunc("GET /v1/graphs/{name}", s.instrument("graph_stats", s.handleStats))
	api.HandleFunc("DELETE /v1/graphs/{name}", s.instrument("delete", s.handleDelete))
	api.HandleFunc("GET /v1/graphs/{name}/export", s.instrument("export", s.handleExport))
	api.HandleFunc("PUT /v1/graphs/{name}/import", s.instrument("import", s.handleImport))
	api.HandleFunc("GET /v1/graphs/{name}/query", s.instrument("query", s.handleQuery))
	api.HandleFunc("GET /v1/graphs/{name}/accuracy", s.instrument("accuracy", s.handleAccuracy))
	api.HandleFunc("GET /v1/graphs/{name}/pagerank", s.instrument("pagerank", s.handlePageRank))
	api.HandleFunc("POST /v1/graphs/{name}/ppr", s.instrument("ppr", s.handlePPR))
	api.HandleFunc("POST /v1/graphs/{name}/batch", s.instrument("batch", s.handleBatch))
	api.HandleFunc("GET /v1/graphs/{name}/topk", s.instrument("topk", s.handleTopK))
	api.HandleFunc("POST /v1/graphs/{name}/candidates", s.instrument("candidates", s.handleCandidates))
	api.HandleFunc("POST /v1/graphs/{name}/edges", s.instrument("edges", s.handleEdges))
	api.HandleFunc("POST /v1/graphs/{name}/rebuild", s.instrument("rebuild", s.handleRebuild))
	api.HandleFunc("POST /v1/snapshot", s.instrument("snapshot", s.handleSnapshot))
	api.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleServerStats))

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	if s.EnableMetrics {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	mux.Handle("/v1/", s.withAdmission(api))
	return s.withRecovery(mux)
}

// queryContext derives the context a query computes under: the request's
// (so a disconnected client cancels the solve) plus the server's
// per-request deadline when configured.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.QueryTimeout)
	}
	return r.Context(), func() {}
}

// Add preprocesses g and registers it under name, replacing any previous
// graph with that name. It is the programmatic equivalent of PUT.
func (s *Server) Add(name string, g *bear.Graph, opts bear.Options) error {
	return s.AddCtx(context.Background(), name, g, opts)
}

// AddCtx is Add honoring cancellation on ctx during the preprocessing
// pass. The server always retains the exact system matrix H alongside the
// factors (opts.KeepH is forced on) so the refined-query and accuracy
// endpoints work on every registered graph; the cost is one extra |E|-sized
// matrix per graph.
func (s *Server) AddCtx(ctx context.Context, name string, g *bear.Graph, opts bear.Options) error {
	if err := validateName(name); err != nil {
		return err
	}
	opts.KeepH = true
	dyn, err := bear.NewDynamicCtx(ctx, g, opts)
	if err != nil {
		return err
	}
	s.applyRebuildPolicy(dyn)
	e := &entry{dyn: dyn, opts: opts, created: time.Now(), gen: nextGen.Add(1)}
	s.mu.Lock()
	s.graphs[name] = e
	s.mu.Unlock()
	// Registered outside s.mu: the registry must never be entered while
	// holding the graph lock (see metrics.go). Re-registering a name
	// rebinds the gauge callbacks to the new Dynamic.
	s.exportGraphMetrics(name, e)
	return nil
}

// applyRebuildPolicy pushes the server-wide auto-rebuild thresholds onto
// a graph entering the registry, whatever door it came through (API
// registration, snapshot restore, cluster transfer).
func (s *Server) applyRebuildPolicy(dyn *bear.Dynamic) {
	if s.RebuildMaxChurn > 0 {
		dyn.SetRebuildPolicy(bear.RebuildPolicy{MaxChurnFraction: s.RebuildMaxChurn})
	}
}

func validateName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("graph name must be 1-128 characters")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("graph name contains invalid character %q", r)
		}
	}
	return nil
}

func (s *Server) lookup(name string) (*entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.graphs[name]
	return e, ok
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...interface{}) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(name string) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("graph %q not found", name)}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	switch {
	case errors.As(err, &he):
		writeJSON(w, he.status, map[string]string{"error": he.msg})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout,
			map[string]string{"error": "query deadline exceeded"})
	case errors.Is(err, context.Canceled):
		writeJSON(w, StatusClientClosedRequest,
			map[string]string{"error": "client closed request"})
	case errors.Is(err, bear.ErrRebuildInProgress):
		writeJSON(w, http.StatusConflict,
			map[string]string{"error": "rebuild already in progress"})
	case errors.Is(err, bear.ErrIncrementalNotApplicable):
		// The pending updates disqualify the demanded mode — a state
		// conflict, not a server fault; retry with mode=auto or mode=full.
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

// GraphInfo is the JSON stats document for one registered graph.
type GraphInfo struct {
	Name      string    `json:"name"`
	Nodes     int       `json:"nodes"`
	Edges     int       `json:"edges"`
	Spokes    int       `json:"spokes"`
	Hubs      int       `json:"hubs"`
	Blocks    int       `json:"blocks"`
	NNZ       int64     `json:"precomputed_nnz"`
	Bytes     int64     `json:"precomputed_bytes"`
	RestartC  float64   `json:"restart_probability"`
	DropTol   float64   `json:"drop_tolerance"`
	Ordering  string    `json:"ordering"`
	Pending   int       `json:"pending_updates"`
	Rebuild   bool      `json:"rebuilding"`
	CreatedAt time.Time `json:"created_at"`
}

func (e *entry) info(name string) GraphInfo {
	p := e.dyn.Precomputed()
	g := e.dyn.Graph()
	return GraphInfo{
		Name:      name,
		Nodes:     g.N(),
		Edges:     g.M(),
		Spokes:    p.N1,
		Hubs:      p.N2,
		Blocks:    len(p.Blocks),
		NNZ:       p.NNZ(),
		Bytes:     p.Bytes(),
		RestartC:  p.C,
		DropTol:   e.opts.DropTol,
		Ordering:  bear.NormalizeOrdering(e.opts.Ordering),
		Pending:   e.dyn.PendingNodes(),
		Rebuild:   e.dyn.RebuildInProgress(),
		CreatedAt: e.created,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]GraphInfo, 0, len(names))
	for _, name := range names {
		infos = append(infos, s.graphs[name].info(name))
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{"graphs": infos})
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validateName(name); err != nil {
		writeError(w, errBadRequest("%v", err))
		return
	}
	opts := bear.Options{}
	q := r.URL.Query()
	if v := q.Get("c"); v != "" {
		c, err := strconv.ParseFloat(v, 64)
		// ParseFloat accepts "NaN", which slips through plain range
		// comparisons (NaN fails every one) — reject non-finite explicitly.
		if err != nil || math.IsNaN(c) || c <= 0 || c >= 1 {
			writeError(w, errBadRequest("restart probability %q must be in (0,1)", v))
			return
		}
		opts.C = c
	}
	if v := q.Get("drop"); v != "" {
		d, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			writeError(w, errBadRequest("drop tolerance %q must be a finite non-negative number", v))
			return
		}
		opts.DropTol = d
	}
	if v := q.Get("laplacian"); v != "" {
		lap, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, errBadRequest("laplacian %q must be a boolean", v))
			return
		}
		opts.Laplacian = lap
	}
	opts.Kernel = s.DefaultKernel
	if v := q.Get("kernel"); v != "" {
		// Validity is checked by Preprocess before any work happens, so an
		// unknown layout comes back as a clean 400 below.
		opts.Kernel = v
	}
	opts.Ordering = s.DefaultOrdering
	if v := q.Get("ordering"); v != "" {
		// Unknown engines are rejected by Preprocess up front → 400 below.
		opts.Ordering = v
	}
	body := http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)
	g, err := sniffLoad(body)
	if err != nil {
		writeError(w, errBadRequest("parsing graph: %v", err))
		return
	}
	// Preprocess under the request context: a disconnected client aborts
	// the pass between Algorithm-1 stages instead of burning it to
	// completion for nobody. Context errors keep their identity so
	// writeError maps them to the 499/504 paths.
	if err := s.AddCtx(r.Context(), name, g, opts); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, err)
			return
		}
		writeError(w, errBadRequest("preprocessing: %v", err))
		return
	}
	e, _ := s.lookup(name)
	writeJSON(w, http.StatusCreated, e.info(name))
}

// sniffLoad parses either an edge list or a MatrixMarket body. An empty or
// unreadable body is rejected here so the caller can return a clean 400
// instead of handing a broken reader to the edge-list parser.
func sniffLoad(r io.Reader) (*bear.Graph, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len("%%MatrixMarket"))
	if len(head) == 0 {
		// A short-but-valid body yields head bytes alongside io.EOF; no
		// bytes at all means the body is empty or the read failed outright.
		if err == nil || err == io.EOF {
			return nil, errors.New("empty request body")
		}
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	if strings.EqualFold(string(head), "%%MatrixMarket") {
		return bear.LoadMatrixMarket(br)
	}
	return bear.LoadEdgeList(br)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	writeJSON(w, http.StatusOK, e.info(name))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.graphs[name]
	delete(s.graphs, name)
	s.mu.Unlock()
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	s.dropGraphMetrics(name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// ScoredNode is one ranked result.
type ScoredNode struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

func topResults(scores []float64, top int) []ScoredNode {
	if top <= 0 {
		top = 10
	}
	// Clamp to the score vector so an absurd requested count cannot drive
	// the ranking loop and response allocation off a cliff.
	if top > len(scores) {
		top = len(scores)
	}
	ids := bear.TopK(scores, top)
	out := make([]ScoredNode, len(ids))
	for i, u := range ids {
		out[i] = ScoredNode{Node: u, Score: scores[u]}
	}
	return out
}

// parseTop reads the ?top= parameter, defaulting to 10 and clamping to the
// graph's node count n (?top=1000000000 returns every node, not an error).
func parseTop(r *http.Request, n int) (int, error) {
	v := r.URL.Query().Get("top")
	if v == "" {
		return 10, nil
	}
	top, err := strconv.Atoi(v)
	if err != nil || top <= 0 {
		return 0, errBadRequest("top %q must be a positive integer", v)
	}
	if top > n {
		top = n
	}
	return top, nil
}

// parseRefine reads the ?refine=<tol> parameter shared by the query, ppr,
// and batch endpoints: 0 (or absent) answers through the plain solver,
// a positive tolerance answers through iterative refinement against the
// retained exact H until the relative residual falls below it.
func parseRefine(r *http.Request) (float64, error) {
	v := r.URL.Query().Get("refine")
	if v == "" {
		return 0, nil
	}
	tol, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(tol) || math.IsInf(tol, 0) || tol < 0 {
		return 0, errBadRequest("refine %q must be a finite non-negative tolerance", v)
	}
	return tol, nil
}

// refineGate rejects parameter combinations the refined path cannot serve:
// refinement verifies against the preprocessed matrices, so pending dynamic
// updates (answered through the Woodbury correction, which H knows nothing
// about) require a rebuild first — the same restriction effective
// importance has.
func refineGate(e *entry, refine float64) error {
	if refine > 0 && e.dyn.PendingNodes() > 0 {
		return errBadRequest("refined queries require a rebuild after updates")
	}
	return nil
}

// refineOne answers one starting distribution through iterative refinement
// and records the refinement metrics (queries, sweeps, final residual).
func (s *Server) refineOne(ctx context.Context, e *entry, q []float64, tol float64) ([]float64, bear.RefineStats, error) {
	dst := make([]float64, len(q))
	stats, err := e.dyn.Precomputed().QueryRefinedCtx(ctx, dst, q, tol, 0, nil)
	if err != nil {
		return nil, stats, err
	}
	s.observeRefine(stats)
	return dst, stats, nil
}

// refineSolve is refineOne without the stats, shaped for cachedSolve's
// solve closure; it runs only on cache misses, so hits do not re-count.
func (s *Server) refineSolve(ctx context.Context, e *entry, q []float64, tol float64) ([]float64, error) {
	dst, _, err := s.refineOne(ctx, e, q, tol)
	return dst, err
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	seedStr := r.URL.Query().Get("seed")
	seed, err := strconv.Atoi(seedStr)
	if err != nil {
		writeError(w, errBadRequest("seed %q must be an integer", seedStr))
		return
	}
	top, err := parseTop(r, e.dyn.Graph().N())
	if err != nil {
		writeError(w, err)
		return
	}
	useEI := r.URL.Query().Get("ei") != ""
	if useEI && e.dyn.PendingNodes() > 0 {
		writeError(w, errBadRequest("effective importance requires a rebuild after updates"))
		return
	}
	refine, err := parseRefine(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if refine > 0 && useEI {
		writeError(w, errBadRequest("refine cannot be combined with ei: effective importance has no residual to verify"))
		return
	}
	if err := refineGate(e, refine); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ctx, tr, debug := s.traceContext(ctx, r)
	var ei byte
	if useEI {
		ei = 1
	}
	// Keep this key shape in sync with handleBatch's per-seed probe, which
	// must hit the same entries.
	hash := e.hasher("query").Int(seed).Byte(ei).Float64(refine).Int(top).Sum()
	start := time.Now()
	res, status, err := s.cachedSolve(ctx, e, hash, top, func(ctx context.Context) ([]float64, error) {
		if useEI {
			return e.dyn.Precomputed().QueryEffectiveImportanceCtx(ctx, seed)
		}
		if refine > 0 {
			p := e.dyn.Precomputed()
			if seed < 0 || seed >= p.N {
				return nil, fmt.Errorf("seed %d out of range [0,%d)", seed, p.N)
			}
			q := make([]float64, p.N)
			q[seed] = 1
			return s.refineSolve(ctx, e, q, refine)
		}
		return e.dyn.QueryCtx(ctx, seed)
	})
	if err != nil {
		writeError(w, queryError(err))
		return
	}
	s.logSlow("query", name, fmt.Sprintf("seed=%d", seed), status, time.Since(start), tr)
	w.Header().Set("X-Cache", status)
	resp := map[string]interface{}{
		"graph":   name,
		"seed":    seed,
		"results": res.results,
	}
	if debug {
		resp["trace"] = traceSpans(tr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePageRank(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	n := e.dyn.Graph().N()
	top, err := parseTop(r, n)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ctx, tr, debug := s.traceContext(ctx, r)
	hash := e.hasher("pagerank").Int(top).Sum()
	start := time.Now()
	res, status, err := s.cachedSolve(ctx, e, hash, top, func(ctx context.Context) ([]float64, error) {
		q := make([]float64, n)
		for i := range q {
			q[i] = 1 / float64(n)
		}
		return e.dyn.QueryDistCtx(ctx, q)
	})
	if err != nil {
		writeError(w, queryError(err))
		return
	}
	s.logSlow("pagerank", name, fmt.Sprintf("top=%d", top), status, time.Since(start), tr)
	w.Header().Set("X-Cache", status)
	resp := map[string]interface{}{
		"graph":   name,
		"results": res.results,
	}
	if debug {
		resp["trace"] = traceSpans(tr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryError classifies a failure out of the solver: context errors keep
// their identity (so writeError maps them to 504/499) while anything else
// is the caller's fault and reports as 400.
func queryError(err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return err
	}
	return errBadRequest("query: %v", err)
}

type pprRequest struct {
	Seeds map[string]float64 `json:"seeds"`
	Top   int                `json:"top"`
}

func (s *Server) handlePPR(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	var req pprRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, errBadRequest("decoding body: %v", err))
		return
	}
	if len(req.Seeds) == 0 {
		writeError(w, errBadRequest("seeds must not be empty"))
		return
	}
	n := e.dyn.Graph().N()
	q := make([]float64, n)
	for k, weight := range req.Seeds {
		node, err := strconv.Atoi(k)
		if err != nil || node < 0 || node >= n {
			writeError(w, errBadRequest("seed %q out of range [0,%d)", k, n))
			return
		}
		if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
			writeError(w, errBadRequest("seed %q weight %v must be a finite non-negative number", k, weight))
			return
		}
		q[node] = weight
	}
	// Per-weight validation allows 0 (a harmless no-op entry), but a map
	// whose weights are *all* zero describes no starting distribution at
	// all — solving it would cache and return an all-zero vector. Reject
	// before the cache lookup.
	allZero := true
	for _, weight := range q {
		if weight != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		writeError(w, errBadRequest("seed weights must not all be zero"))
		return
	}
	top := req.Top
	if top <= 0 {
		top = 10
	}
	if top > n {
		top = n
	}
	refine, err := parseRefine(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := refineGate(e, refine); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ctx, tr, debug := s.traceContext(ctx, r)
	// Fold the normalized distribution (node-order, zeros skipped) so the
	// hash is independent of JSON key order and duplicate spellings.
	h := e.hasher("ppr")
	for node, weight := range q {
		if weight != 0 {
			h = h.Int(node).Float64(weight)
		}
	}
	hash := h.Float64(refine).Int(top).Sum()
	start := time.Now()
	res, status, err := s.cachedSolve(ctx, e, hash, top, func(ctx context.Context) ([]float64, error) {
		if refine > 0 {
			return s.refineSolve(ctx, e, q, refine)
		}
		return e.dyn.QueryDistCtx(ctx, q)
	})
	if err != nil {
		writeError(w, queryError(err))
		return
	}
	s.logSlow("ppr", name, fmt.Sprintf("seeds=%d", len(req.Seeds)), status, time.Since(start), tr)
	w.Header().Set("X-Cache", status)
	resp := map[string]interface{}{
		"graph":   name,
		"results": res.results,
	}
	if debug {
		resp["trace"] = traceSpans(tr)
	}
	writeJSON(w, http.StatusOK, resp)
}

type edgeRequest struct {
	Op      string    `json:"op"` // add, remove, replace
	U       int       `json:"u"`
	V       int       `json:"v"`
	W       float64   `json:"w"`
	Dst     []int     `json:"dst"`     // replace only
	Weights []float64 `json:"weights"` // replace only
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	var req edgeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, errBadRequest("decoding body: %v", err))
		return
	}
	// Mirror the core layer's weight validation (finite and non-negative —
	// +Inf and NaN poison row normalization into NaN scores) so malformed
	// updates fail with a clear 400 before touching the graph.
	var err error
	switch req.Op {
	case "add":
		weight := req.W
		if weight == 0 {
			weight = 1
		}
		if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
			writeError(w, errBadRequest("edge weight %g must be finite and non-negative", weight))
			return
		}
		err = e.dyn.AddEdge(req.U, req.V, weight)
	case "remove":
		err = e.dyn.RemoveEdge(req.U, req.V)
	case "replace":
		for _, weight := range req.Weights {
			if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
				writeError(w, errBadRequest("edge weight %g must be finite and non-negative", weight))
				return
			}
		}
		err = e.dyn.UpdateNode(req.U, req.Dst, req.Weights)
	default:
		writeError(w, errBadRequest("op %q must be add, remove, or replace", req.Op))
		return
	}
	if err != nil {
		writeError(w, errBadRequest("%v", err))
		return
	}
	if s.RebuildThreshold > 0 && e.dyn.PendingNodes() >= s.RebuildThreshold {
		// Fold the updates in the background; this request — and every
		// query meanwhile — keeps serving the current Woodbury-corrected
		// state and returns immediately.
		s.startRebuild(name, e, bear.RebuildAuto)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"graph":      name,
		"pending":    e.dyn.PendingNodes(),
		"rebuilding": e.dyn.RebuildInProgress(),
	})
}

// startRebuild kicks off a background rebuild of e unless one is already
// running. Queries continue against the old snapshot for the duration;
// updates accepted meanwhile survive the swap as the new pending set.
func (s *Server) startRebuild(name string, e *entry, mode bear.RebuildMode) {
	if e.dyn.RebuildInProgress() {
		return
	}
	okC, failC := s.rebuildCounters(name)
	go func() {
		rep, err := e.dyn.RebuildCtx(context.Background(), mode)
		switch {
		case err == nil:
			okC.Inc()
			s.recordRebuildOutcome(name, rep)
		case !errors.Is(err, bear.ErrRebuildInProgress):
			failC.Inc()
			s.logf("background rebuild of %q: %v", name, err)
		}
	}()
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	mode, err := bear.ParseRebuildMode(r.URL.Query().Get("mode"))
	if err != nil {
		writeError(w, errBadRequest("%v", err))
		return
	}
	if r.URL.Query().Get("async") != "" {
		s.startRebuild(name, e, mode)
		writeJSON(w, http.StatusAccepted, map[string]interface{}{
			"graph":      name,
			"mode":       string(mode),
			"rebuilding": true,
		})
		return
	}
	okC, failC := s.rebuildCounters(name)
	start := time.Now()
	rep, err := e.dyn.RebuildCtx(r.Context(), mode)
	if err != nil {
		if !errors.Is(err, bear.ErrRebuildInProgress) && !errors.Is(err, bear.ErrIncrementalNotApplicable) {
			failC.Inc()
		}
		writeError(w, err)
		return
	}
	okC.Inc()
	s.recordRebuildOutcome(name, rep)
	resp := map[string]interface{}{
		"graph":             name,
		"mode":              string(rep.Mode),
		"requested":         string(rep.Requested),
		"dirty_nodes":       rep.DirtyNodes,
		"blocks_refactored": rep.BlocksRefactored,
		"total_blocks":      rep.TotalBlocks,
		"rebuild_ms":        float64(time.Since(start).Microseconds()) / 1000,
	}
	if rep.FallbackReason != "" {
		resp["fallback_reason"] = rep.FallbackReason
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.SnapshotPath == "" {
		writeError(w, errBadRequest("server has no snapshot path configured"))
		return
	}
	s.mu.RLock()
	count := len(s.graphs)
	s.mu.RUnlock()
	if err := s.SaveSnapshot(s.SnapshotPath); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"path":   s.SnapshotPath,
		"graphs": count,
	})
}
