package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bear"
)

// benchServer registers one mid-sized graph and returns the handler plus
// the node count, bypassing TCP so the benchmark measures the serving
// path, not the loopback stack.
func benchServer(b *testing.B, cacheBytes int64) (http.Handler, int) {
	b.Helper()
	g := bear.GenerateCavemanHubs(bear.CavemanHubsConfig{
		Communities: 100, Size: 30, PIntra: 0.25, Hubs: 10, HubDeg: 50, Seed: 7,
	})
	var buf bytes.Buffer
	if err := g.SaveEdgeList(&buf); err != nil {
		b.Fatal(err)
	}
	s := New()
	s.CacheMaxBytes = cacheBytes
	h := s.Handler()
	req := httptest.NewRequest("PUT", "/v1/graphs/g", &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		b.Fatalf("registering bench graph: status %d body %s", rec.Code, rec.Body.String())
	}
	return h, g.N()
}

// zipfSeeds is the request mix a real serving workload sees: a few hot
// seeds dominate, with a long tail of cold ones.
func zipfSeeds(n, count int) []int {
	rng := rand.New(rand.NewSource(42))
	z := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
	seeds := make([]int, count)
	for i := range seeds {
		seeds[i] = int(z.Uint64())
	}
	return seeds
}

// BenchmarkServeHotPath measures one query through the full handler stack
// (routing, admission, cache, JSON encoding) under a Zipf seed mix.
// "hit" serves from a warmed cache; "miss" runs with the cache disabled so
// every request pays a full solve. The hit/miss ratio is the cache's
// value on the serving hot path.
func BenchmarkServeHotPath(b *testing.B) {
	run := func(b *testing.B, h http.Handler, seeds []int) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("GET",
				fmt.Sprintf("/v1/graphs/g/query?seed=%d&top=10", seeds[i%len(seeds)]), nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("query: status %d body %s", rec.Code, rec.Body.String())
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}

	b.Run("hit", func(b *testing.B) {
		h, n := benchServer(b, 256<<20)
		seeds := zipfSeeds(n, 1024)
		// Warm every seed in the mix so the measured loop is all hits.
		for _, s := range seeds {
			req := httptest.NewRequest("GET",
				fmt.Sprintf("/v1/graphs/g/query?seed=%d&top=10", s), nil)
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
		run(b, h, seeds)
	})
	b.Run("miss", func(b *testing.B) {
		h, n := benchServer(b, -1) // cache disabled: every request solves
		seeds := zipfSeeds(n, 1024)
		run(b, h, seeds)
	})
}

// BenchmarkServeBatch measures the batch endpoint against the equivalent
// single-seed loop through the handler, cache disabled in both arms so
// the comparison isolates the blocked multi-RHS solver.
func BenchmarkServeBatch(b *testing.B) {
	const batch = 64
	b.Run("batch", func(b *testing.B) {
		h, n := benchServer(b, -1)
		var sb strings.Builder
		sb.WriteString(`{"seeds":[`)
		for i := 0; i < batch; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", (i*31)%n)
		}
		sb.WriteString(`],"top":10}`)
		body := sb.String()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v1/graphs/g/batch", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("batch: status %d body %s", rec.Code, rec.Body.String())
			}
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "seeds/s")
	})
	b.Run("perseed", func(b *testing.B) {
		h, n := benchServer(b, -1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				req := httptest.NewRequest("GET",
					fmt.Sprintf("/v1/graphs/g/query?seed=%d&top=10", (j*31)%n), nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("query: status %d", rec.Code)
				}
			}
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "seeds/s")
	})
}
