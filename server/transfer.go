package server

import (
	"net/http"
	"time"

	"bear"
)

// Graph state transfer: GET export streams one graph's full dynamic
// serving state (the same BEARDY01 framing the registry snapshot embeds,
// self-checksummed), and PUT import registers a graph from such a stream.
// Together they are the anti-entropy primitive the bearfront coordinator's
// /v1/cluster/repair uses to re-push a graph from a healthy replica to a
// lagging one without re-running preprocessing — the factors travel, not
// the edge list.

// handleExport serves GET /v1/graphs/{name}/export.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	// SaveState holds the graph's lock while serializing, so the blob is a
	// consistent point-in-time state even under concurrent updates. A
	// failure mid-stream cannot be turned into a clean HTTP error anymore
	// (headers are out), but the BEARDY01 footer makes the receiver reject
	// the truncated blob.
	if err := e.dyn.SaveState(w); err != nil {
		s.logf("exporting graph %q: %v", name, err)
	}
}

// handleImport serves PUT /v1/graphs/{name}/import: the body is a blob
// previously produced by export (or Dynamic.SaveState), and the graph is
// registered under {name} — replacing any existing graph of that name —
// without a preprocessing pass.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validateName(name); err != nil {
		writeError(w, errBadRequest("%v", err))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)
	dyn, err := bear.LoadDynamic(body)
	if err != nil {
		writeError(w, errBadRequest("importing graph state: %v", err))
		return
	}
	s.applyRebuildPolicy(dyn)
	e := &entry{dyn: dyn, opts: dyn.Options(), created: time.Now(), gen: nextGen.Add(1)}
	s.mu.Lock()
	s.graphs[name] = e
	s.mu.Unlock()
	s.exportGraphMetrics(name, e)
	writeJSON(w, http.StatusCreated, e.info(name))
}
