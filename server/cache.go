package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"bear/internal/obsv"
	"bear/internal/resultcache"
)

// The serving layer caches full score vectors plus their rendered top-k
// slices, keyed by (registration generation, dynamic epoch, parameter
// hash). Invalidation is purely by key construction: every accepted edge
// update and every rebuild swap bumps the Dynamic epoch, and every PUT or
// snapshot restore assigns a fresh generation, so a changed graph makes
// all prior entries unreachable and they age out of the LRU. The epoch in
// the key is always the one observed *before* the solve ran — a concurrent
// update can therefore only make a cached vector fresher than its key
// promises, never staler, so no request ever reads pre-update data through
// the cache.

// nextGen hands out registration generations. It is process-global so a
// graph re-registered under a reused name — including via snapshot
// restore — can never collide with cache entries of its predecessor.
var nextGen atomic.Uint64

// cachedResult is one cached answer: the full score vector and the top-k
// slice rendered for the requested k (k is part of the cache key).
type cachedResult struct {
	scores  []float64
	results []ScoredNode
}

func (c *cachedResult) CacheBytes() int64 {
	return int64(len(c.scores))*8 + int64(len(c.results))*24
}

// resultCache lazily builds the cache from the configured budget so the
// fields can be set any time before the first request.
func (s *Server) resultCache() *resultcache.Cache {
	s.cacheOnce.Do(func() {
		s.cache = resultcache.New(s.CacheMaxBytes, s.CacheTTL)
	})
	return s.cache
}

// hasher seeds a parameter digest for one query kind against this entry.
// The preprocessing options are folded in alongside the generation so a
// key never outlives a semantic change to how scores are computed.
func (e *entry) hasher(kind string) resultcache.Hasher {
	h := resultcache.NewHasher().String(kind).Float64(e.opts.C).Float64(e.opts.DropTol)
	if e.opts.Laplacian {
		return h.Byte(1)
	}
	return h.Byte(0)
}

// cachedSolve answers one query through the cache and the singleflight
// coalescer: a hit returns immediately; concurrent identical misses run
// one solve and share it; the winner's result is cached for later
// requests. The returned status is the X-Cache header value
// (hit|miss|coalesced).
func (s *Server) cachedSolve(ctx context.Context, e *entry, hash uint64, top int, solve func(context.Context) ([]float64, error)) (*cachedResult, string, error) {
	cache := s.resultCache()
	key := resultcache.Key{Gen: e.gen, Epoch: e.dyn.Epoch(), Hash: hash}
	sw := obsv.FromContext(ctx).Start(obsv.SpanCacheLookup)
	v, ok := cache.Get(key)
	sw.Stop()
	if ok {
		return v.(*cachedResult), "hit", nil
	}
	v, shared, err := s.flight.Do(ctx, key, func() (resultcache.Value, error) {
		scores, err := solve(ctx)
		if err != nil {
			return nil, err
		}
		res := &cachedResult{scores: scores, results: topResults(scores, top)}
		cache.Put(key, res)
		return res, nil
	})
	if err != nil {
		return nil, "", err
	}
	if shared {
		return v.(*cachedResult), "coalesced", nil
	}
	return v.(*cachedResult), "miss", nil
}

// Stats is the server-wide operational snapshot served at GET /v1/stats.
//
// Deprecated: prefer scraping GET /metrics, which carries these counters
// and much more in Prometheus format. The endpoint is kept for scripted
// consumers and reads through the same metric registry, so the two views
// can never disagree.
type Stats struct {
	Graphs int               `json:"graphs"`
	Cache  resultcache.Stats `json:"cache"`
}

// Stats reports the registry size and cache counters. The values are read
// back through the obsv registry series (bear_graphs, bear_cache_*) rather
// than straight from the cache, so /v1/stats is by construction a subset
// of what GET /metrics exposes.
func (s *Server) Stats() Stats {
	m := s.metrics()
	return Stats{
		Graphs: int(m.graphs.Value()),
		Cache: resultcache.Stats{
			Hits:      m.cacheHits.Value(),
			Misses:    m.cacheMisses.Value(),
			Coalesced: m.cacheCoalesced.Value(),
			Evictions: m.cacheEvictions.Value(),
			Expired:   m.cacheExpired.Value(),
			Entries:   int(m.cacheEntries.Value()),
			Bytes:     int64(m.cacheBytes.Value()),
			MaxBytes:  int64(m.cacheMaxBytes.Value()),
		},
	}
}

func (s *Server) handleServerStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// maxBatchSeeds bounds one batch request; larger batches should be split
// by the client so admission control and timeouts stay meaningful.
const maxBatchSeeds = 1024

type batchRequest struct {
	Seeds []int `json:"seeds"`
	Top   int   `json:"top"`
}

// BatchSeedResult is one seed's slot in a batch response.
type BatchSeedResult struct {
	Seed    int          `json:"seed"`
	Cache   string       `json:"cache"` // hit | miss
	Results []ScoredNode `json:"results"`
}

// handleBatch answers POST /v1/graphs/{name}/batch: each seed is first
// looked up in the result cache (sharing entries with the single-seed
// query endpoint), and all misses are solved together through the blocked
// multi-RHS batch solver — one factor traversal per chunk of seeds instead
// of one per seed. Results are bit-identical to the single-seed path.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.lookup(name)
	if !ok {
		writeError(w, errNotFound(name))
		return
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, errBadRequest("decoding body: %v", err))
		return
	}
	if len(req.Seeds) == 0 {
		writeError(w, errBadRequest("seeds must not be empty"))
		return
	}
	if len(req.Seeds) > maxBatchSeeds {
		writeError(w, errBadRequest("batch of %d seeds exceeds the limit of %d", len(req.Seeds), maxBatchSeeds))
		return
	}
	n := e.dyn.Graph().N()
	for _, seed := range req.Seeds {
		if seed < 0 || seed >= n {
			writeError(w, errBadRequest("seed %d out of range [0,%d)", seed, n))
			return
		}
	}
	top := req.Top
	if top <= 0 {
		top = 10
	}
	if top > n {
		top = n
	}
	refine, err := parseRefine(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := refineGate(e, refine); err != nil {
		writeError(w, err)
		return
	}

	ctx, cancel := s.queryContext(r)
	defer cancel()
	ctx, tr, debug := s.traceContext(ctx, r)
	start := time.Now()
	cache := s.resultCache()
	// One epoch read covers the whole batch, taken before any solving, so
	// every entry written below is safe under the fresher-than-promised
	// rule even if updates land mid-batch.
	epoch := e.dyn.Epoch()
	out := make([]BatchSeedResult, len(req.Seeds))
	keys := make([]resultcache.Key, len(req.Seeds))
	var missIdx []int
	sw := tr.Start(obsv.SpanCacheLookup)
	for i, seed := range req.Seeds {
		// Probe shape must stay in sync with handleQuery's key (kind
		// "query", seed, ei byte, refine tolerance, top) so batch and
		// single-seed requests share cache entries.
		h := e.hasher("query").Int(seed).Byte(0).Float64(refine).Int(top)
		keys[i] = resultcache.Key{Gen: e.gen, Epoch: epoch, Hash: h.Sum()}
		if v, ok := cache.Get(keys[i]); ok {
			out[i] = BatchSeedResult{Seed: seed, Cache: "hit", Results: v.(*cachedResult).results}
		} else {
			missIdx = append(missIdx, i)
		}
	}
	sw.Stop()
	status := "hit"
	if len(missIdx) > 0 {
		status = "miss"
		missSeeds := make([]int, len(missIdx))
		for j, i := range missIdx {
			missSeeds[j] = req.Seeds[i]
		}
		var vecs [][]float64
		var err error
		if refine > 0 {
			// Refinement sweeps are per-vector (each iterate needs its own
			// residual), so refined misses solve seed by seed instead of
			// through the blocked multi-RHS path.
			vecs = make([][]float64, len(missSeeds))
			for j, seed := range missSeeds {
				q := make([]float64, n)
				q[seed] = 1
				if vecs[j], err = s.refineSolve(ctx, e, q, refine); err != nil {
					break
				}
			}
		} else {
			vecs, err = e.dyn.QueryBatchCtx(ctx, missSeeds, 0)
		}
		if err != nil {
			writeError(w, queryError(err))
			return
		}
		for j, i := range missIdx {
			res := &cachedResult{scores: vecs[j], results: topResults(vecs[j], top)}
			cache.Put(keys[i], res)
			out[i] = BatchSeedResult{Seed: req.Seeds[i], Cache: "miss", Results: res.results}
		}
	}
	s.logSlow("batch", name, fmt.Sprintf("seeds=%d misses=%d", len(req.Seeds), len(missIdx)),
		status, time.Since(start), tr)
	w.Header().Set("X-Cache", status)
	resp := map[string]interface{}{
		"graph":   name,
		"results": out,
	}
	if debug {
		resp["trace"] = traceSpans(tr)
	}
	writeJSON(w, http.StatusOK, resp)
}
