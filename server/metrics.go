package server

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"bear"
	"bear/internal/obsv"
	"bear/internal/resultcache"
	"bear/internal/sparse/kernel"
)

// This file wires the obsv metrics registry into the serving layer. Every
// exported metric is documented in OPERATIONS.md ("Metrics reference");
// keep the two in sync when adding series.
//
// Two rules keep the wiring deadlock- and drift-free:
//
//   - Never touch the registry while holding s.mu: collection callbacks
//     (GaugeFunc/CounterFunc) may take s.mu.RLock, and the registry holds
//     its own lock during a scrape.
//   - Subsystems that already count (the result cache, the singleflight
//     coalescer, Dynamic) are exported through Func metrics reading the
//     live object, never copied into parallel counters — so /metrics and
//     /v1/stats can never disagree (Stats reads through the same series).

// serverMetrics bundles the registry and the pre-resolved series the hot
// path updates.
type serverMetrics struct {
	reg *obsv.Registry

	inFlight *obsv.Gauge
	shed     *obsv.Counter
	panics   *obsv.Counter

	refineQueries  *obsv.Counter
	refineSweeps   *obsv.Counter
	refineResidual *obsv.Histogram

	topkPruned         *obsv.Counter
	candidatesRequests *obsv.Counter

	cacheHits      *obsv.FuncCounter
	cacheMisses    *obsv.FuncCounter
	cacheCoalesced *obsv.FuncCounter
	cacheEvictions *obsv.FuncCounter
	cacheExpired   *obsv.FuncCounter
	cacheEntries   *obsv.FuncGauge
	cacheBytes     *obsv.FuncGauge
	cacheMaxBytes  *obsv.FuncGauge
	graphs         *obsv.FuncGauge

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

// endpointMetrics is the per-endpoint slice of the HTTP metrics: one
// latency histogram plus request counters keyed by status code.
type endpointMetrics struct {
	name    string
	latency *obsv.Histogram
	mu      sync.Mutex
	codes   map[int]*obsv.Counter
}

const (
	helpRequests = "HTTP requests served, by endpoint and status code."
	helpLatency  = "HTTP request latency in seconds, by endpoint."
)

// metrics lazily builds the registry and the server-wide series; the
// registry exists (and counts) whether or not the /metrics endpoint is
// enabled, so enabling it later loses no history.
func (s *Server) metrics() *serverMetrics {
	s.metricsOnce.Do(func() {
		reg := obsv.NewRegistry()
		m := &serverMetrics{reg: reg, endpoints: make(map[string]*endpointMetrics)}
		m.inFlight = reg.Gauge("bear_http_in_flight",
			"Requests currently inside a /v1 handler.")
		m.shed = reg.Counter("bear_http_shed_total",
			"Requests shed with 503 by admission control. Shed requests are not counted in bear_http_requests_total.")
		m.panics = reg.Counter("bear_http_panics_total",
			"Handler panics converted to 500 by the recovery middleware.")

		m.refineQueries = reg.Counter("bear_refine_queries_total",
			"Queries answered through iterative refinement (?refine=<tol> or the accuracy endpoint). Cache hits of refined results are not re-counted.")
		m.refineSweeps = reg.Counter("bear_refine_sweeps_total",
			"Richardson refinement sweeps applied across all refined queries; the ratio to bear_refine_queries_total is the mean sweeps per query.")
		m.refineResidual = reg.Histogram("bear_refine_residual",
			"Final score-level residual infinity-norm of refined queries.", obsv.ResidualBuckets)

		m.topkPruned = reg.Counter("bear_topk_pruned_total",
			"Hybrid top-k solves certified from local-push bounds alone, skipping the exact block-elimination solve. Cache hits are not re-counted.")
		m.candidatesRequests = reg.Counter("bear_candidates_requests_total",
			"Link-prediction candidate requests served (POST /candidates), counted before validation.")

		cacheStats := func() resultcache.Stats { return s.resultCache().Stats() }
		m.cacheHits = reg.CounterFunc("bear_cache_hits_total",
			"Result-cache hits.", func() uint64 { return cacheStats().Hits })
		m.cacheMisses = reg.CounterFunc("bear_cache_misses_total",
			"Result-cache misses (a solve ran).", func() uint64 { return cacheStats().Misses })
		m.cacheCoalesced = reg.CounterFunc("bear_cache_coalesced_total",
			"Requests that shared another in-flight identical solve.", func() uint64 { return s.flight.Coalesced() })
		m.cacheEvictions = reg.CounterFunc("bear_cache_evictions_total",
			"Result-cache LRU evictions.", func() uint64 { return cacheStats().Evictions })
		m.cacheExpired = reg.CounterFunc("bear_cache_expired_total",
			"Result-cache TTL expirations.", func() uint64 { return cacheStats().Expired })
		m.cacheEntries = reg.GaugeFunc("bear_cache_entries",
			"Result-cache resident entries.", func() float64 { return float64(cacheStats().Entries) })
		m.cacheBytes = reg.GaugeFunc("bear_cache_bytes",
			"Result-cache resident bytes.", func() float64 { return float64(cacheStats().Bytes) })
		m.cacheMaxBytes = reg.GaugeFunc("bear_cache_max_bytes",
			"Result-cache byte budget.", func() float64 { return float64(cacheStats().MaxBytes) })

		m.graphs = reg.GaugeFunc("bear_graphs", "Graphs currently registered.", func() float64 {
			s.mu.RLock()
			n := len(s.graphs)
			s.mu.RUnlock()
			return float64(n)
		})

		// Kernel-layer layout/parallel-path counters, read live from
		// internal/sparse/kernel. Process-wide rather than per graph:
		// layouts are chosen per matrix at preprocess/load time, and the
		// hot-path counters are plain atomics with no graph dimension.
		for _, layout := range kernel.Layouts() {
			layout := layout
			l := obsv.L("layout", layout)
			reg.CounterFunc("bear_kernel_selected_total",
				"Kernel matrices constructed, by storage layout ('parallel' counts wrappers around another layout). Shows what the auto heuristic or the -kernel override picked.",
				func() uint64 { sel, _, _ := kernel.Stats(layout); return sel }, l)
			reg.CounterFunc("bear_kernel_spmv_total",
				"Kernel SpMV-family calls (full, row-ranged and column-ranged), by layout.",
				func() uint64 { _, spmv, _ := kernel.Stats(layout); return spmv }, l)
			reg.CounterFunc("bear_kernel_spmm_total",
				"Kernel SpMM-family (multi-RHS) calls, by layout.",
				func() uint64 { _, _, spmm := kernel.Stats(layout); return spmm }, l)
		}
		s.srvMetrics = m
	})
	return s.srvMetrics
}

// endpoint returns (creating on first use) the per-endpoint metric slice.
func (m *serverMetrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.endpoints[name]
	if !ok {
		em = &endpointMetrics{
			name: name,
			latency: m.reg.Histogram("bear_http_request_seconds", helpLatency,
				obsv.LatencyBuckets, obsv.L("endpoint", name)),
			codes: make(map[int]*obsv.Counter),
		}
		m.endpoints[name] = em
	}
	return em
}

// code returns the request counter for one (endpoint, status code) pair.
func (em *endpointMetrics) code(reg *obsv.Registry, status int) *obsv.Counter {
	em.mu.Lock()
	defer em.mu.Unlock()
	c, ok := em.codes[status]
	if !ok {
		c = reg.Counter("bear_http_requests_total", helpRequests,
			obsv.L("endpoint", em.name), obsv.L("code", strconv.Itoa(status)))
		em.codes[status] = c
	}
	return c
}

// statusRecorder captures the response status for the request counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// instrument wraps one endpoint handler with the request counter, latency
// histogram, and in-flight gauge. The endpoint label is the route's
// logical name, not the raw path, so label cardinality stays fixed.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	m := s.metrics()
	em := m.endpoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sr, r)
		em.latency.Observe(time.Since(start).Seconds())
		em.code(m.reg, sr.status).Inc()
	}
}

// exportGraphMetrics (re)publishes the per-graph series for a registered
// graph. Everything is a Func metric closing over the live *bear.Dynamic,
// so rebuild swaps and pending-update churn are reflected at scrape time
// with no refresh hook; re-registering a name rebinds the callbacks to
// the new instance. DeleteLabeled drops the series when the graph goes.
func (s *Server) exportGraphMetrics(name string, e *entry) {
	m := s.metrics()
	dyn := e.dyn
	g := obsv.L("graph", name)

	stage := func(stageName string, sel func(st bear.Stats) time.Duration) {
		m.reg.GaugeFunc("bear_preprocess_stage_seconds",
			"Preprocessing time of the last completed pass, by Algorithm 1 stage (ordering, block_lu, schur_assembly, schur_factor, total).",
			func() float64 { return sel(dyn.Precomputed().Stats).Seconds() },
			g, obsv.L("stage", stageName))
	}
	stage("ordering", func(st bear.Stats) time.Duration { return st.TimeOrdering })
	stage("block_lu", func(st bear.Stats) time.Duration { return st.TimeLU1 })
	stage("schur_assembly", func(st bear.Stats) time.Duration { return st.TimeSchur })
	stage("schur_factor", func(st bear.Stats) time.Duration { return st.TimeLU2 })
	stage("total", func(st bear.Stats) time.Duration { return st.TimeTotal })

	// One series per registered engine (a closed set, so cardinality is
	// bounded): 1 for the engine that produced the current index, 0
	// otherwise — rebuild swaps are reflected at scrape time.
	for _, name := range bear.Orderings() {
		name := name
		m.reg.GaugeFunc("bear_ordering_selected",
			"1 for the ordering engine that produced the graph's current index (see Options.Ordering), 0 for the others.",
			func() float64 {
				if bear.NormalizeOrdering(dyn.Options().Ordering) == name {
					return 1
				}
				return 0
			}, g, obsv.L("ordering", name))
	}

	m.reg.GaugeFunc("bear_graph_nodes", "Nodes in the graph.",
		func() float64 { return float64(dyn.Graph().N()) }, g)
	m.reg.GaugeFunc("bear_graph_edges", "Edges in the graph (with all accepted updates).",
		func() float64 { return float64(dyn.Graph().M()) }, g)
	m.reg.GaugeFunc("bear_graph_pending_updates", "Nodes updated since the last completed preprocessing pass; per-query Woodbury cost grows with this.",
		func() float64 { return float64(dyn.PendingNodes()) }, g)
	m.reg.GaugeFunc("bear_graph_rebuilding", "1 while a background rebuild is preprocessing, else 0.",
		func() float64 {
			if dyn.RebuildInProgress() {
				return 1
			}
			return 0
		}, g)
	m.reg.GaugeFunc("bear_precomputed_bytes", "Memory held by the precomputed matrices and permutations.",
		func() float64 { return float64(dyn.Precomputed().Bytes()) }, g)

	// Last completed rebuild, whichever path it took. Zero until the first
	// rebuild finishes; incremental rebuilds report zero ordering time
	// (the partition is reused) while splice is nonzero only for them.
	rstage := func(stageName string, sel func(rep bear.RebuildReport) time.Duration) {
		m.reg.GaugeFunc("bear_rebuild_stage_seconds",
			"Stage split of the last completed rebuild (ordering, block_lu, splice, schur_assembly, schur_factor, total). Incremental rebuilds spend nothing on the ordering; full rebuilds spend nothing on splice.",
			func() float64 {
				rep, ok := dyn.LastRebuild()
				if !ok {
					return 0
				}
				return sel(rep).Seconds()
			}, g, obsv.L("stage", stageName))
	}
	rstage("ordering", func(rep bear.RebuildReport) time.Duration { return rep.TimeOrdering })
	rstage("block_lu", func(rep bear.RebuildReport) time.Duration { return rep.TimeBlockLU })
	rstage("splice", func(rep bear.RebuildReport) time.Duration { return rep.TimeSplice })
	rstage("schur_assembly", func(rep bear.RebuildReport) time.Duration { return rep.TimeSchurAssembly })
	rstage("schur_factor", func(rep bear.RebuildReport) time.Duration { return rep.TimeSchurFactor })
	rstage("total", func(rep bear.RebuildReport) time.Duration { return rep.TimeTotal })
	m.reg.GaugeFunc("bear_rebuild_blocks_refactored",
		"Diagonal H11 blocks re-factored by the last completed rebuild (all of them for a full pass, only the dirty ones for an incremental).",
		func() float64 {
			rep, ok := dyn.LastRebuild()
			if !ok {
				return 0
			}
			return float64(rep.BlocksRefactored)
		}, g)
}

// recordRebuildOutcome counts one completed rebuild by the path that
// actually ran, and by fallback reason when auto mode declined the
// incremental path. Called after every successful RebuildCtx driven by
// the server (sync endpoint or background); label cardinality is bounded
// because both mode and reason come from closed sets in the engine.
func (s *Server) recordRebuildOutcome(name string, rep bear.RebuildReport) {
	m := s.metrics()
	g := obsv.L("graph", name)
	m.reg.Counter("bear_rebuild_mode_total",
		"Completed rebuilds by the path that actually ran (full or incremental).",
		g, obsv.L("mode", string(rep.Mode))).Inc()
	if rep.FallbackReason != "" {
		m.reg.Counter("bear_rebuild_fallback_total",
			"Auto-mode rebuilds that fell back to a full pass, by reason. A steady stream of hub_dirty or churn fallbacks means the update pattern defeats incremental rebuilds; see OPERATIONS.md.",
			g, obsv.L("reason", rep.FallbackReason)).Inc()
	}
}

// observeRefine records one refined solve into the refinement series.
func (s *Server) observeRefine(stats bear.RefineStats) {
	m := s.metrics()
	m.refineQueries.Inc()
	m.refineSweeps.Add(uint64(stats.Sweeps))
	m.refineResidual.Observe(stats.Residual)
}

// dropGraphMetrics removes every per-graph series for name.
func (s *Server) dropGraphMetrics(name string) {
	s.metrics().reg.DeleteLabeled("graph", name)
}

// rebuildCounters returns the (success, failure) rebuild counters for one
// graph; both survive graph re-registration, as monotonic counters must.
func (s *Server) rebuildCounters(name string) (ok, failed *obsv.Counter) {
	m := s.metrics()
	g := obsv.L("graph", name)
	return m.reg.Counter("bear_rebuilds_total", "Completed preprocessing rebuilds.", g),
		m.reg.Counter("bear_rebuild_errors_total", "Rebuilds that failed; the previous matrices keep serving.", g)
}

// TraceSpan is one solver-stage timing in a ?trace=1 response, in
// milliseconds, stages merged (a batch records one span set per chunk)
// and ordered by first execution.
type TraceSpan struct {
	Span string  `json:"span"`
	Ms   float64 `json:"ms"`
}

// traceSpans renders a trace for the JSON response.
func traceSpans(tr *obsv.Trace) []TraceSpan {
	merged := tr.Merged()
	out := make([]TraceSpan, len(merged))
	for i, sp := range merged {
		out[i] = TraceSpan{Span: sp.Name, Ms: float64(sp.Dur.Microseconds()) / 1000}
	}
	return out
}

// traceContext attaches a fresh obsv.Trace to ctx when this request wants
// one: either the caller asked for the breakdown (?trace=1) or the server
// samples every query for the slow-query log (TraceSlow > 0). Otherwise
// ctx is returned untouched and the solver runs the nil-trace fast path.
func (s *Server) traceContext(ctx context.Context, r *http.Request) (_ context.Context, tr *obsv.Trace, debug bool) {
	debug = r.URL.Query().Get("trace") != ""
	if !debug && s.TraceSlow <= 0 {
		return ctx, nil, false
	}
	tr = obsv.NewTrace()
	return obsv.WithTrace(ctx, tr), tr, debug
}

// logSlow emits the structured slow-query log line when a traced query
// crossed the TraceSlow threshold.
func (s *Server) logSlow(endpoint, graph, detail, cacheStatus string, elapsed time.Duration, tr *obsv.Trace) {
	if s.TraceSlow <= 0 || elapsed < s.TraceSlow || tr == nil {
		return
	}
	s.logf("slow query: endpoint=%s graph=%s %s cache=%s elapsed=%s trace: %s",
		endpoint, graph, detail, cacheStatus, elapsed.Round(time.Microsecond), tr)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics().reg.WritePrometheus(w)
}
