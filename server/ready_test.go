package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"bear"
)

func readyGraph(t *testing.T) *bear.Graph {
	t.Helper()
	g := bear.GenerateCavemanHubs(bear.CavemanHubsConfig{
		Communities: 4, Size: 8, PIntra: 0.5, Hubs: 2, HubDeg: 6, Seed: 7,
	})
	return g
}

func TestReadyzLifecycle(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Empty registry: alive but not ready.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	var rep ReadyReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decoding readiness: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rep.Status != "empty" {
		t.Fatalf("empty server readyz = %d %q, want 503 empty", resp.StatusCode, rep.Status)
	}

	// Liveness stays green throughout.
	if hr, err := http.Get(ts.URL + "/healthz"); err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz on empty server = %v %v, want 200", hr, err)
	} else {
		hr.Body.Close()
	}

	if err := s.Add("g", readyGraph(t), bear.Options{}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	rep = ReadyReport{}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decoding readiness: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Status != "ready" {
		t.Fatalf("readyz after Add = %d %q, want 200 ready", resp.StatusCode, rep.Status)
	}
	gr, ok := rep.Graphs["g"]
	if !ok {
		t.Fatal("readiness report missing graph g")
	}
	if gr.Rebuilding || gr.Pending != 0 {
		t.Fatalf("fresh graph readiness = %+v, want idle", gr)
	}
}

func TestReadyzReportsPendingUpdates(t *testing.T) {
	s := New()
	s.RebuildThreshold = 0 // no auto-rebuild; pending updates accumulate
	if err := s.Add("g", readyGraph(t), bear.Options{}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	e, _ := s.lookup("g")
	if err := e.dyn.AddEdge(0, 5, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	rep := s.Readiness()
	if rep.Status != "ready" {
		t.Fatalf("status = %q, want ready (pending updates do not unready)", rep.Status)
	}
	if rep.Graphs["g"].Pending == 0 {
		t.Fatal("readiness should report pending updates")
	}
}

func TestReadyzDuringRestore(t *testing.T) {
	s := New()
	if err := s.Add("g", readyGraph(t), bear.Options{}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	var snap bytes.Buffer
	if err := s.WriteSnapshot(&snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	// A reader that checks readiness mid-restore, while ReadSnapshot is
	// still consuming it.
	probe := &readinessProbeReader{r: bytes.NewReader(snap.Bytes()), s: s}
	if err := s.ReadSnapshot(probe); err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !probe.sawRestoring {
		t.Fatal("readyz never reported restoring during ReadSnapshot")
	}
	if rep := s.Readiness(); rep.Status != "ready" {
		t.Fatalf("status after restore = %q, want ready", rep.Status)
	}
}

type readinessProbeReader struct {
	r            io.Reader
	s            *Server
	sawRestoring bool
}

func (p *readinessProbeReader) Read(b []byte) (int, error) {
	if p.s.Readiness().Status == "restoring" {
		p.sawRestoring = true
	}
	return p.r.Read(b)
}

func TestExportImportRoundTrip(t *testing.T) {
	src := New()
	if err := src.Add("g", readyGraph(t), bear.Options{}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	srcTS := httptest.NewServer(src.Handler())
	defer srcTS.Close()

	resp, err := http.Get(srcTS.URL + "/v1/graphs/g/export")
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d, %v", resp.StatusCode, err)
	}

	dst := New()
	dstTS := httptest.NewServer(dst.Handler())
	defer dstTS.Close()
	req, _ := http.NewRequest(http.MethodPut, dstTS.URL+"/v1/graphs/g/import", bytes.NewReader(blob))
	ir, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	defer ir.Body.Close()
	if ir.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(ir.Body)
		t.Fatalf("import = %d: %s", ir.StatusCode, body)
	}

	// The imported graph answers queries identically to the source.
	se, _ := src.lookup("g")
	de, _ := dst.lookup("g")
	want, err := se.dyn.Query(3)
	if err != nil {
		t.Fatalf("source query: %v", err)
	}
	got, err := de.dyn.Query(3)
	if err != nil {
		t.Fatalf("imported query: %v", err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("score[%d] differs after import: %g vs %g", i, want[i], got[i])
		}
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/graphs/g/import", bytes.NewReader([]byte("not a state blob")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage import = %d, want 400", resp.StatusCode)
	}
}
