// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one per artifact (see DESIGN.md's per-experiment index). These
// run at a reduced scale so `go test -bench=.` completes in minutes; the
// cmd/bearbench tool runs the same experiments at full scale with complete
// reporting.
package bear_test

import (
	"fmt"
	"math"
	"testing"

	"bear/internal/bench"
	"bear/internal/core"
	"bear/internal/graph"
	"bear/internal/graph/gen"
	"bear/internal/rwr"
)

const benchScale = 0.1

func benchDataset(b *testing.B, name string) *graph.Graph {
	b.Helper()
	d, err := bench.DatasetByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return d.Make(benchScale)
}

// BenchmarkTable4Stats regenerates Table 4: BEAR preprocessing statistics
// per dataset, reported as benchmark metrics.
func BenchmarkTable4Stats(b *testing.B) {
	for _, d := range bench.Datasets() {
		g := d.Make(benchScale)
		b.Run(d.Name, func(b *testing.B) {
			var st core.Stats
			for i := 0; i < b.N; i++ {
				p, err := core.Preprocess(g, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				st = p.Stats
			}
			b.ReportMetric(float64(st.N2), "n2")
			b.ReportMetric(float64(st.SumSqBlocks), "sum-n1i^2")
			b.ReportMetric(float64(st.NNZL1U1+st.NNZL2U2+st.NNZH12H21), "nnz")
		})
	}
}

// BenchmarkFig1aPreprocess regenerates Fig 1(a): preprocessing time of the
// exact methods.
func BenchmarkFig1aPreprocess(b *testing.B) {
	for _, name := range []string{"routing", "web"} {
		g := benchDataset(b, name)
		for _, m := range bench.ExactMethods() {
			if !bench.HasPreprocessing(m) {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", name, m.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := m.Preprocess(g, rwr.Options{C: 0.05}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig1bQuery regenerates Fig 1(b): query time of the exact
// methods (preprocessing excluded from the timer).
func BenchmarkFig1bQuery(b *testing.B) {
	for _, name := range []string{"routing", "web"} {
		g := benchDataset(b, name)
		q := make([]float64, g.N())
		q[1] = 1
		for _, m := range bench.ExactMethods() {
			s, err := m.Preprocess(g, rwr.Options{C: 0.05})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", name, m.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := s.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig2Nonzeros regenerates Fig 2: nonzeros of each method's
// precomputed matrices on the routing analogue.
func BenchmarkFig2Nonzeros(b *testing.B) {
	g := benchDataset(b, "routing")
	methods := []bench.Method{
		bench.BearMethod{Label: "bear-exact"},
		rwr.LUDecomp{}, rwr.QRDecomp{}, rwr.Inversion{}, rwr.BLin{}, rwr.NBLin{},
	}
	for _, m := range methods {
		b.Run(m.Name(), func(b *testing.B) {
			var nnz int64
			for i := 0; i < b.N; i++ {
				s, err := m.Preprocess(g, rwr.Options{C: 0.05})
				if err != nil {
					b.Fatal(err)
				}
				nnz = s.NNZ()
			}
			b.ReportMetric(float64(nnz), "nnz")
		})
	}
}

// BenchmarkFig6DropTolerance regenerates Fig 6: BEAR-Approx query time and
// size across the ξ ladder.
func BenchmarkFig6DropTolerance(b *testing.B) {
	g := benchDataset(b, "routing")
	n := float64(g.N())
	q := make([]float64, g.N())
	q[1] = 1
	for _, lvl := range []struct {
		label string
		xi    float64
	}{
		{"xi=0", 0},
		{"xi=n^-1", 1 / n},
		{"xi=n^-1|2", 1 / math.Sqrt(n)},
		{"xi=n^-1|4", 1 / math.Pow(n, 0.25)},
	} {
		p, err := core.Preprocess(g, core.Options{DropTol: lvl.xi})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(lvl.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.QueryDist(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.NNZ()), "nnz")
		})
	}
}

// BenchmarkFig7Structure regenerates Fig 7: BEAR cost across the R-MAT
// p_ul sweep.
func BenchmarkFig7Structure(b *testing.B) {
	for _, d := range bench.RMATFamily(benchScale) {
		g := d.Make(benchScale)
		b.Run(d.Name, func(b *testing.B) {
			var p *core.Precomputed
			var err error
			for i := 0; i < b.N; i++ {
				p, err = core.Preprocess(g, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.Stats.N2), "n2")
			b.ReportMetric(float64(p.Bytes()), "bytes")
		})
	}
}

// BenchmarkFig8Tradeoff regenerates Figs 8/13: query time of the
// approximate methods at a representative operating point.
func BenchmarkFig8Tradeoff(b *testing.B) {
	g := benchDataset(b, "routing")
	n := float64(g.N())
	q := make([]float64, g.N())
	q[1] = 1
	configs := []struct {
		m    bench.Method
		opts rwr.Options
	}{
		{bench.BearMethod{Label: "bear-approx"}, rwr.Options{C: 0.05, DropTol: 1 / math.Sqrt(n)}},
		{rwr.BLin{}, rwr.Options{C: 0.05, DropTol: 1 / math.Sqrt(n)}},
		{rwr.NBLin{}, rwr.Options{C: 0.05, DropTol: 1 / math.Sqrt(n)}},
		{rwr.RPPR{}, rwr.Options{C: 0.05, EpsB: 1e-3}},
		{rwr.BRPPR{}, rwr.Options{C: 0.05, EpsB: 1e-3}},
	}
	for _, cfg := range configs {
		s, err := cfg.m.Preprocess(g, cfg.opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.Bytes()), "bytes")
		})
	}
}

// BenchmarkFig10PPRQuery regenerates Fig 10: multi-seed PPR query time for
// BEAR-Exact vs the iterative method.
func BenchmarkFig10PPRQuery(b *testing.B) {
	g := benchDataset(b, "web")
	for _, m := range []bench.Method{bench.BearMethod{Label: "bear-exact"}, rwr.Iterative{}} {
		s, err := m.Preprocess(g, rwr.Options{C: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range []int{1, 10, 100} {
			seeds := make([]int, k)
			for i := range seeds {
				seeds[i] = (i * 37) % g.N()
			}
			q := bench.MultiSeedQuery(g.N(), seeds)
			b.Run(fmt.Sprintf("%s/seeds=%d", m.Name(), k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := s.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig11Seeds regenerates Fig 11: BEAR-Exact query time vs #seeds
// across datasets.
func BenchmarkFig11Seeds(b *testing.B) {
	for _, name := range []string{"routing", "email"} {
		g := benchDataset(b, name)
		p, err := core.Preprocess(g, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range []int{1, 10, 100} {
			seeds := make([]int, k)
			for i := range seeds {
				seeds[i] = (i * 13) % g.N()
			}
			q := bench.MultiSeedQuery(g.N(), seeds)
			b.Run(fmt.Sprintf("%s/seeds=%d", name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := p.QueryDist(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig12ApproxPreprocess regenerates Fig 12: preprocessing time of
// the approximate methods.
func BenchmarkFig12ApproxPreprocess(b *testing.B) {
	g := benchDataset(b, "coauthor")
	xi := 1 / float64(g.N())
	for _, m := range []bench.Method{bench.BearMethod{Label: "bear-approx"}, rwr.BLin{}, rwr.NBLin{}} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Preprocess(g, rwr.Options{C: 0.05, DropTol: xi}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSlashBurn measures the reordering substrate on its own — the
// T(m + n log n) term of Theorem 2.
func BenchmarkSlashBurn(b *testing.B) {
	g := benchDataset(b, "web")
	b.Run("preprocess-component", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Preprocess(g, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDynamicQuery measures the Woodbury-corrected query cost as the
// pending update count k grows (each query is k+1 block-elimination
// solves after the one-time cache build).
func BenchmarkDynamicQuery(b *testing.B) {
	g := benchDataset(b, "routing")
	for _, k := range []int{0, 1, 8, 32} {
		d, err := core.NewDynamic(g, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := d.AddEdge(i*3, (i*7+1)%g.N(), 1); err != nil {
				b.Fatal(err)
			}
		}
		// Warm the Woodbury cache outside the timer.
		if _, err := d.Query(0); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pending=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Query(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryBatch measures batched multi-seed throughput at different
// worker counts.
func BenchmarkQueryBatch(b *testing.B) {
	// The caveman-with-hubs serving graph, not the scaled-down paper
	// dataset: at bench scale the web graph's factors are a few hundred
	// nonzeros, too small to exercise the blocked kernels.
	g := throughputGraph()
	p, err := core.Preprocess(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]int, 64)
	for i := range seeds {
		seeds[i] = (i * 31) % g.N()
	}
	// The baseline the blocked multi-RHS path must beat: one full solve
	// per seed.
	b.Run("perseed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range seeds {
				if _, err := p.Query(s); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*len(seeds))/b.Elapsed().Seconds(), "seeds/s")
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.QueryBatch(seeds, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*len(seeds))/b.Elapsed().Seconds(), "seeds/s")
		})
	}
}

// throughputGraph is the caveman-with-hubs serving benchmark graph used by
// BenchmarkQueryThroughput (and recorded in BENCH_query.json): strong
// community structure with a global hub backbone, the regime BEAR's
// block-diagonal fast path is designed for.
func throughputGraph() *graph.Graph {
	return gen.CavemanHubs(gen.CavemanHubsConfig{
		Communities: 150, Size: 30, PIntra: 0.25, Hubs: 12, HubDeg: 60, Seed: 42,
	})
}

// BenchmarkQueryThroughput measures the serving hot path: single-seed RWR
// queries per second on the caveman-with-hubs graph. Run with -benchmem;
// before/after numbers live in BENCH_query.json.
func BenchmarkQueryThroughput(b *testing.B) {
	g := throughputGraph()
	p, err := core.Preprocess(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("single-seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.Query(i % g.N()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("single-seed-reused", func(b *testing.B) {
		// The steady-state serving pattern: caller-owned result vector
		// plus a pooled workspace. This is the configuration that must
		// show zero allocations per query.
		dst := make([]float64, g.N())
		ws := p.AcquireWorkspace()
		defer p.ReleaseWorkspace(ws)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.QueryTo(dst, i%g.N(), ws); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("single-seed+top10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scores, err := p.Query(i % g.N())
			if err != nil {
				b.Fatal(err)
			}
			core.TopK(scores, 10)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("batch64/workers=4", func(b *testing.B) {
		seeds := make([]int, 64)
		for i := range seeds {
			seeds[i] = (i * 31) % g.N()
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.QueryBatch(seeds, 4); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*len(seeds))/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkParallelPreprocess measures the per-block parallel preprocessing
// against the sequential path.
func BenchmarkParallelPreprocess(b *testing.B) {
	g := benchDataset(b, "trust")
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Preprocess(g, core.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
